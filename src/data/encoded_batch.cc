#include "data/encoded_batch.h"

#include <utility>

#include "common/macros.h"

namespace metaleak {

void EncodedBatch::Configure(const std::vector<ColumnKind>& kinds,
                             const std::vector<CodeWidth>& widths) {
  METALEAK_DCHECK(kinds.size() == widths.size());
  if (columns_.size() == kinds.size()) {
    bool same = true;
    for (size_t c = 0; c < kinds.size(); ++c) {
      if (columns_[c].kind != kinds[c] ||
          (kinds[c] == ColumnKind::kCodes &&
           columns_[c].codes.width() != widths[c])) {
        same = false;
        break;
      }
    }
    if (same) return;  // keep the existing arenas
  }
  columns_.assign(kinds.size(), Column{});
  for (size_t c = 0; c < kinds.size(); ++c) {
    columns_[c].kind = kinds[c];
    columns_[c].codes.Reset(widths[c]);
  }
  num_rows_ = 0;
}

void EncodedBatch::Configure(const std::vector<ColumnKind>& kinds) {
  Configure(kinds, std::vector<CodeWidth>(kinds.size(), CodeWidth::kU32));
}

void EncodedBatch::ResetRows(size_t num_rows) {
  num_rows_ = num_rows;
  for (Column& col : columns_) {
    if (col.kind == ColumnKind::kCodes) {
      col.codes.resize(num_rows);
    } else {
      col.reals.resize(num_rows);
    }
  }
}

std::vector<CodeWidth> CodeWidthsForDomains(
    const std::vector<Domain>& domains) {
  std::vector<CodeWidth> widths;
  widths.reserve(domains.size());
  for (const Domain& d : domains) {
    widths.push_back(d.is_categorical()
                         ? CodeWidthForNumCodes(d.values().size() + 1)
                         : CodeWidth::kU32);
  }
  return widths;
}

std::vector<EncodedBatch::ColumnKind> ColumnKindsForDomains(
    const std::vector<Domain>& domains) {
  std::vector<EncodedBatch::ColumnKind> kinds;
  kinds.reserve(domains.size());
  for (const Domain& d : domains) {
    kinds.push_back(d.is_categorical() ? EncodedBatch::ColumnKind::kCodes
                                       : EncodedBatch::ColumnKind::kReals);
  }
  return kinds;
}

Result<Relation> MaterializeRelation(const Schema& schema,
                                     const std::vector<Domain>& domains,
                                     const EncodedBatch& batch) {
  if (schema.num_attributes() != batch.num_columns() ||
      domains.size() != batch.num_columns()) {
    return Status::Invalid("batch layout does not match schema/domains");
  }
  const size_t m = batch.num_columns();
  const size_t n = batch.num_rows();

  std::vector<std::vector<Value>> columns(m);
  for (size_t c = 0; c < m; ++c) {
    std::vector<Value>& out = columns[c];
    out.reserve(n);
    if (batch.kind(c) == EncodedBatch::ColumnKind::kCodes) {
      const std::vector<Value>& values = domains[c].values();
      batch.WithCodes(c, [&](const auto* codes) {
        for (size_t r = 0; r < n; ++r) {
          const uint32_t code = codes[r];
          if (code == 0 || code > values.size()) {
            out.push_back(Value::Null());
          } else {
            out.push_back(values[code - 1]);
          }
        }
      });
    } else {
      for (double x : batch.reals(c)) out.push_back(Value::Real(x));
    }
  }

  // Same physical-type relaxation as the value-path generator: generated
  // values are domain samples, so continuous attributes become doubles
  // regardless of the disclosed physical type.
  std::vector<Attribute> attrs = schema.attributes();
  for (size_t c = 0; c < m; ++c) {
    bool has_double = false;
    bool has_int = false;
    bool has_string = false;
    for (const Value& v : columns[c]) {
      has_double |= v.is_double();
      has_int |= v.is_int();
      has_string |= v.is_string();
    }
    if (has_string) {
      attrs[c].type = DataType::kString;
    } else if (has_double && !has_int) {
      attrs[c].type = DataType::kDouble;
    } else if (has_int && !has_double) {
      attrs[c].type = DataType::kInt64;
    } else if (has_double && has_int) {
      for (Value& v : columns[c]) {
        if (v.is_int()) v = Value::Real(static_cast<double>(v.AsInt()));
      }
      attrs[c].type = DataType::kDouble;
    }
  }

  return Relation::Make(Schema(std::move(attrs)), std::move(columns));
}

}  // namespace metaleak
