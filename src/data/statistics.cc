#include "data/statistics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/math_util.h"

namespace metaleak {

namespace {

Status CheckAttribute(const Relation& relation, size_t attribute) {
  if (attribute >= relation.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  return Status::OK();
}

}  // namespace

Result<ColumnStats> ComputeColumnStats(const Relation& relation,
                                       size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAttribute(relation, attribute));
  ColumnStats stats;
  const std::vector<Value>& col = relation.column(attribute);
  stats.count = col.size();
  std::unordered_set<Value> distinct;
  double sum = 0.0;
  size_t numeric = 0;
  bool first = true;
  for (const Value& v : col) {
    if (v.is_null()) {
      ++stats.nulls;
      continue;
    }
    distinct.insert(v);
    if (v.is_numeric()) {
      double x = v.AsNumeric();
      if (first) {
        stats.min = stats.max = x;
        first = false;
      } else {
        stats.min = std::min(stats.min, x);
        stats.max = std::max(stats.max, x);
      }
      sum += x;
      ++numeric;
    }
  }
  stats.distinct = distinct.size();
  if (numeric > 0) {
    stats.mean = sum / static_cast<double>(numeric);
    double acc = 0.0;
    for (const Value& v : col) {
      if (v.is_null() || !v.is_numeric()) continue;
      double d = v.AsNumeric() - stats.mean;
      acc += d * d;
    }
    stats.stddev =
        numeric < 2 ? 0.0
                    : std::sqrt(acc / static_cast<double>(numeric - 1));
  }
  return stats;
}

size_t Histogram::total() const {
  size_t t = 0;
  for (size_t c : counts) t += c;
  return t;
}

size_t Histogram::BucketOf(double x) const {
  if (counts.empty()) return 0;
  if (hi <= lo) return 0;
  double t = (x - lo) / (hi - lo);
  t = std::clamp(t, 0.0, 1.0);
  size_t b = static_cast<size_t>(t * static_cast<double>(counts.size()));
  return std::min(b, counts.size() - 1);
}

double Histogram::Mass(size_t i) const {
  size_t t = total();
  if (t == 0 || i >= counts.size()) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(t);
}

Result<Histogram> BuildHistogram(const Relation& relation, size_t attribute,
                                 size_t buckets) {
  METALEAK_RETURN_NOT_OK(CheckAttribute(relation, attribute));
  if (buckets == 0) {
    return Status::Invalid("histogram needs at least one bucket");
  }
  Histogram h;
  bool first = true;
  for (const Value& v : relation.column(attribute)) {
    if (v.is_null() || !v.is_numeric()) continue;
    double x = v.AsNumeric();
    if (first) {
      h.lo = h.hi = x;
      first = false;
    } else {
      h.lo = std::min(h.lo, x);
      h.hi = std::max(h.hi, x);
    }
  }
  if (first) {
    return Status::Invalid("column has no numeric values");
  }
  h.counts.assign(buckets, 0);
  for (const Value& v : relation.column(attribute)) {
    if (v.is_null() || !v.is_numeric()) continue;
    h.counts[h.BucketOf(v.AsNumeric())]++;
  }
  return h;
}

size_t FrequencyTable::total() const {
  size_t t = 0;
  for (size_t c : counts) t += c;
  return t;
}

Result<FrequencyTable> BuildFrequencyTable(const Relation& relation,
                                           size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAttribute(relation, attribute));
  std::map<Value, size_t> freq;
  for (const Value& v : relation.column(attribute)) {
    if (v.is_null()) continue;
    freq[v]++;
  }
  FrequencyTable table;
  table.values.reserve(freq.size());
  table.counts.reserve(freq.size());
  for (const auto& [value, count] : freq) {
    table.values.push_back(value);
    table.counts.push_back(count);
  }
  return table;
}

Result<double> ColumnEntropy(const Relation& relation, size_t attribute) {
  METALEAK_ASSIGN_OR_RETURN(FrequencyTable table,
                            BuildFrequencyTable(relation, attribute));
  return ShannonEntropyBits(table.counts);
}

}  // namespace metaleak
