#include "data/encoded_relation.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"

namespace metaleak {

namespace {

// FNV-1a style 64-bit mixing for the relation fingerprint.
inline uint64_t MixInto(uint64_t h, uint64_t x) {
  h ^= x + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

EncodedRelation::EncodedRelation(const EncodedRelation& other)
    : schema_(other.schema_),
      num_rows_(other.num_rows_),
      columns_(other.columns_),
      dicts_(other.dicts_),
      fingerprint_(other.fingerprint_),
      source_(other.source_) {
  InitU32Cache();
}

EncodedRelation& EncodedRelation::operator=(const EncodedRelation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  num_rows_ = other.num_rows_;
  columns_ = other.columns_;
  dicts_ = other.dicts_;
  fingerprint_ = other.fingerprint_;
  source_ = other.source_;
  InitU32Cache();
  return *this;
}

void EncodedRelation::InitU32Cache() {
  u32_cache_.clear();
  u32_cache_.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    u32_cache_.push_back(std::make_unique<LazyU32>());
  }
}

const std::vector<uint32_t>& EncodedRelation::codes(size_t c) const {
  const CodeColumn& col = columns_[c];
  if (col.width() == CodeWidth::kU32) return col.u32_vector();
  LazyU32* cache = u32_cache_[c].get();
  std::call_once(cache->once, [&] { cache->codes = col.ToU32(); });
  return cache->codes;
}

uint64_t EncodedRelation::ComputeFingerprint() const {
  uint64_t fp = MixInto(0x6D657461ull, num_rows_);
  fp = MixInto(fp, columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const ColumnDictionary& dict = dicts_[c];
    fp = MixInto(fp, dict.values_.size());
    for (const Value& v : dict.values_) fp = MixInto(fp, v.Hash());
    columns_[c].With([&fp, n = columns_[c].size()](const auto* p) {
      for (size_t r = 0; r < n; ++r) fp = MixInto(fp, p[r]);
    });
  }
  return fp;
}

EncodedRelation EncodedRelation::Encode(const Relation& relation) {
  EncodedRelation out;
  out.schema_ = relation.schema();
  out.num_rows_ = relation.num_rows();
  out.source_ = &relation;
  const size_t m = relation.num_columns();
  out.columns_.resize(m);
  out.dicts_.resize(m);

  for (size_t c = 0; c < m; ++c) {
    const std::vector<Value>& column = relation.column(c);
    ColumnDictionary& dict = out.dicts_[c];

    // Sorted distinct non-null values; Value's total order is strict
    // within a uniformly typed column, so codes are order-preserving.
    std::vector<Value> distinct;
    distinct.reserve(column.size());
    for (const Value& v : column) {
      if (!v.is_null()) distinct.push_back(v);
    }
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());

    dict.values_.reserve(distinct.size() + 1);
    dict.values_.push_back(Value::Null());  // reserved code 0
    for (Value& v : distinct) dict.values_.push_back(std::move(v));
    dict.counts_.assign(dict.values_.size(), 0);

    CodeColumn& codes = out.columns_[c];
    codes.Reset(CodeWidthForNumCodes(dict.values_.size()));
    codes.reserve(column.size());
    const auto begin = dict.values_.begin() + 1;
    const auto end = dict.values_.end();
    for (const Value& v : column) {
      uint32_t code = ColumnDictionary::kNullCode;
      if (!v.is_null()) {
        auto it = std::lower_bound(begin, end, v);
        METALEAK_DCHECK(it != end && *it == v);
        code = static_cast<uint32_t>(it - dict.values_.begin());
      }
      codes.push_back(code);
      ++dict.counts_[code];
    }
    dict.null_count_ = dict.counts_[ColumnDictionary::kNullCode];
  }
  out.fingerprint_ = out.ComputeFingerprint();
  out.InitU32Cache();
  return out;
}

ColumnDictionary ColumnDictionary::FromSortedParts(
    std::vector<Value> values, std::vector<size_t> counts) {
  METALEAK_DCHECK(!values.empty() && values[0].is_null());
  METALEAK_DCHECK(values.size() == counts.size());
  ColumnDictionary dict;
  dict.values_ = std::move(values);
  dict.counts_ = std::move(counts);
  dict.null_count_ = dict.counts_[kNullCode];
  return dict;
}

EncodedRelation EncodedRelation::FromParts(
    Schema schema, std::vector<std::vector<uint32_t>> codes,
    std::vector<ColumnDictionary> dicts, const Relation* source) {
  METALEAK_DCHECK(codes.size() == dicts.size());
  std::vector<CodeColumn> columns;
  columns.reserve(codes.size());
  for (size_t c = 0; c < codes.size(); ++c) {
    columns.push_back(CodeColumn::FromU32(
        codes[c], CodeWidthForNumCodes(dicts[c].num_codes())));
  }
  return FromParts(std::move(schema), std::move(columns), std::move(dicts),
                   source);
}

EncodedRelation EncodedRelation::FromParts(Schema schema,
                                           std::vector<CodeColumn> columns,
                                           std::vector<ColumnDictionary> dicts,
                                           const Relation* source) {
  METALEAK_DCHECK(columns.size() == dicts.size());
  EncodedRelation out;
  out.schema_ = std::move(schema);
  out.num_rows_ = columns.empty() ? 0 : columns[0].size();
  out.source_ = source;
  out.columns_ = std::move(columns);
  out.dicts_ = std::move(dicts);

  // Same mixing sequence as Encode, so FromParts of canonical parts is
  // fingerprint-identical to encoding the decoded relation from scratch.
  out.fingerprint_ = out.ComputeFingerprint();
  out.InitU32Cache();
  return out;
}

Result<Relation> EncodedRelation::Decode() const {
  std::vector<std::vector<Value>> columns(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    columns[c].reserve(num_rows_);
    const size_t n = columns_[c].size();
    for (size_t r = 0; r < n; ++r) {
      columns[c].push_back(dicts_[c].decode(columns_[c].at(r)));
    }
  }
  return Relation::Make(schema_, std::move(columns));
}

Result<Domain> EncodedRelation::DomainOf(size_t c) const {
  if (c >= num_columns()) {
    return Status::OutOfRange("attribute index " + std::to_string(c) +
                              " out of range");
  }
  const Attribute& attr = schema_.attribute(c);
  const ColumnDictionary& dict = dicts_[c];
  if (attr.semantic == SemanticType::kCategorical) {
    if (dict.num_distinct() == 0) {
      return Status::Invalid("attribute '" + attr.name +
                             "' has no non-null values");
    }
    return Domain::Categorical(dict.DistinctValues());
  }
  // Continuous: min/max over the numeric dictionary entries. Non-numeric
  // values (if any) sort after numerics in Value order, so the numeric
  // entries form a sorted prefix of codes 1..K — but scanning all K keeps
  // this robust without relying on that.
  bool seen = false;
  double lo = 0.0;
  double hi = 0.0;
  for (uint32_t code = 1; code < dict.num_codes(); ++code) {
    const Value& v = dict.decode(code);
    if (!v.is_numeric()) continue;
    double x = v.AsNumeric();
    if (!seen) {
      lo = hi = x;
      seen = true;
    } else {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!seen) {
    return Status::Invalid("continuous attribute '" + attr.name +
                           "' has no numeric values");
  }
  return Domain::Continuous(lo, hi);
}

Result<std::vector<Domain>> EncodedRelation::Domains() const {
  std::vector<Domain> out;
  out.reserve(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    METALEAK_ASSIGN_OR_RETURN(Domain d, DomainOf(c));
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<double> ColumnDictionary::NumericByCode() const {
  std::vector<double> out(values_.size(),
                          std::numeric_limits<double>::quiet_NaN());
  for (size_t code = 1; code < values_.size(); ++code) {
    if (values_[code].is_numeric()) out[code] = values_[code].AsNumeric();
  }
  return out;
}

}  // namespace metaleak
