#include "data/csv_loader.h"

#include <algorithm>
#include <unordered_set>

#include "common/csv.h"
#include "common/string_util.h"

namespace metaleak {

namespace {

bool IsNullMarker(const std::string& field,
                  const std::vector<std::string>& markers) {
  std::string trimmed(Trim(field));
  return std::find(markers.begin(), markers.end(), trimmed) != markers.end();
}

}  // namespace

Result<Relation> LoadCsvRelation(std::string_view text,
                                 const CsvLoadOptions& options) {
  CsvOptions csv_options;
  csv_options.delimiter = options.delimiter;
  METALEAK_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text, csv_options));
  if (table.rows.empty()) {
    return Status::Invalid("CSV input is empty");
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  size_t width = table.rows[0].size();
  if (options.has_header) {
    for (const std::string& h : table.rows[0]) {
      names.emplace_back(Trim(h));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < width; ++c) {
      names.push_back("attr" + std::to_string(c));
    }
  }

  size_t nrows = table.rows.size() - first_data_row;

  // Pass 1: infer physical type per column.
  std::vector<DataType> types(width, DataType::kInt64);
  for (size_t c = 0; c < width; ++c) {
    bool all_int = true;
    bool all_double = true;
    bool any_value = false;
    for (size_t r = first_data_row; r < table.rows.size(); ++r) {
      const std::string& field = table.rows[r][c];
      if (IsNullMarker(field, options.null_markers)) continue;
      any_value = true;
      if (all_int && !ParseInt64(field).has_value()) all_int = false;
      if (all_double && !ParseDouble(field).has_value()) all_double = false;
      if (!all_int && !all_double) break;
    }
    if (!any_value || (!all_int && !all_double)) {
      types[c] = DataType::kString;
    } else if (all_int) {
      types[c] = DataType::kInt64;
    } else {
      types[c] = DataType::kDouble;
    }
  }

  // Pass 2: materialize columns.
  std::vector<std::vector<Value>> columns(width);
  for (size_t c = 0; c < width; ++c) columns[c].reserve(nrows);
  for (size_t r = first_data_row; r < table.rows.size(); ++r) {
    for (size_t c = 0; c < width; ++c) {
      const std::string& field = table.rows[r][c];
      if (IsNullMarker(field, options.null_markers)) {
        columns[c].push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case DataType::kInt64:
          columns[c].push_back(Value::Int(*ParseInt64(field)));
          break;
        case DataType::kDouble:
          columns[c].push_back(Value::Real(*ParseDouble(field)));
          break;
        case DataType::kString:
          columns[c].push_back(Value::Str(std::string(Trim(field))));
          break;
      }
    }
  }

  // Semantic inference: numeric columns with few distinct values are
  // categorical codes, everything string is categorical.
  std::vector<Attribute> attrs(width);
  for (size_t c = 0; c < width; ++c) {
    attrs[c].name = names[c];
    attrs[c].type = types[c];
    if (types[c] == DataType::kString) {
      attrs[c].semantic = SemanticType::kCategorical;
    } else {
      std::unordered_set<Value> distinct;
      for (const Value& v : columns[c]) {
        if (!v.is_null()) distinct.insert(v);
      }
      attrs[c].semantic =
          distinct.size() <= options.categorical_distinct_threshold
              ? SemanticType::kCategorical
              : SemanticType::kContinuous;
    }
  }

  return Relation::Make(Schema(std::move(attrs)), std::move(columns));
}

Result<Relation> LoadCsvRelationFile(const std::string& path,
                                     const CsvLoadOptions& options) {
  CsvOptions csv_options;
  csv_options.delimiter = options.delimiter;
  METALEAK_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path, csv_options));
  std::string text = WriteCsv(table, csv_options);
  return LoadCsvRelation(text, options);
}

std::string RelationToCsv(const Relation& relation) {
  CsvTable table;
  std::vector<std::string> header;
  for (const Attribute& a : relation.schema().attributes()) {
    header.push_back(a.name);
  }
  table.rows.push_back(std::move(header));
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(relation.num_columns());
    for (size_t c = 0; c < relation.num_columns(); ++c) {
      row.push_back(relation.at(r, c).ToString());
    }
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(table);
}

}  // namespace metaleak
