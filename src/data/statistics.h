// Column statistics: counts, moments, histograms, frequency tables,
// entropy.
//
// Two consumers: the metadata layer's optional value-distribution
// disclosure (an *extension* of the paper's model — the paper assumes
// distributions stay private, and the distribution-disclosure ablation
// quantifies why that assumption matters), and general profiling output.
#ifndef METALEAK_DATA_STATISTICS_H_
#define METALEAK_DATA_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "data/value.h"

namespace metaleak {

/// Basic per-column statistics.
struct ColumnStats {
  size_t count = 0;       // rows
  size_t nulls = 0;       // NULL rows
  size_t distinct = 0;    // distinct non-null values
  // Numeric-only moments (0 when the column has no numeric values).
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Computes ColumnStats for one attribute.
Result<ColumnStats> ComputeColumnStats(const Relation& relation,
                                       size_t attribute);

/// Equi-width histogram over a numeric column.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  /// counts[i] covers [lo + i*w, lo + (i+1)*w) with w = (hi-lo)/buckets;
  /// the last bucket is closed at hi.
  std::vector<size_t> counts;

  size_t total() const;
  /// Index of the bucket containing x (clamped to the edges).
  size_t BucketOf(double x) const;
  /// Probability mass of bucket i (0 if the histogram is empty).
  double Mass(size_t i) const;
};

/// Builds an equi-width histogram with `buckets` bins over the non-null
/// numeric values; fails when the column has none or buckets == 0.
Result<Histogram> BuildHistogram(const Relation& relation, size_t attribute,
                                 size_t buckets);

/// Frequency table over a categorical column (non-null values), ordered
/// by Value's total order for determinism.
struct FrequencyTable {
  std::vector<Value> values;
  std::vector<size_t> counts;

  size_t total() const;
};

Result<FrequencyTable> BuildFrequencyTable(const Relation& relation,
                                           size_t attribute);

/// Shannon entropy (bits) of the empirical value distribution of a
/// column (non-null values). 0 for constant or empty columns.
Result<double> ColumnEntropy(const Relation& relation, size_t attribute);

}  // namespace metaleak

#endif  // METALEAK_DATA_STATISTICS_H_
