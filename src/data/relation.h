// Relation: columnar, schema-typed tuple storage.
//
// This is the R_real / R_syn object from the paper. Storage is columnar
// (one Value vector per attribute) because every downstream consumer —
// partition construction, domain extraction, generation, leakage metrics —
// iterates attribute-wise.
#ifndef METALEAK_DATA_RELATION_H_
#define METALEAK_DATA_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/schema.h"
#include "data/value.h"

namespace metaleak {

class Relation {
 public:
  Relation() = default;

  /// Builds a relation from columnar data. Fails if column count mismatches
  /// the schema or columns have ragged lengths.
  static Result<Relation> Make(Schema schema,
                               std::vector<std::vector<Value>> columns);

  /// An empty relation (zero rows) over `schema`.
  static Relation Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  /// Row count, tracked explicitly so zero-column relations still count
  /// rows appended via AppendRow. Make() cannot express rows for a
  /// zero-column schema (there is no column to carry them), so
  /// Make(schema, {}) and Empty(schema) both start at zero rows.
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const std::vector<Value>& column(size_t i) const { return columns_[i]; }

  /// Cell accessor; callers must pass in-range indices.
  const Value& at(size_t row, size_t col) const {
    return columns_[col][row];
  }

  /// Returns row `row` as a value vector (materialized copy).
  std::vector<Value> Row(size_t row) const;

  /// Relation restricted to the attribute `indices`, in that order.
  Relation Project(const std::vector<size_t>& indices) const;

  /// Relation restricted to the given row indices, in that order.
  Relation SelectRows(const std::vector<size_t>& rows) const;

  /// Appends a row; fails on arity or (strict) type mismatch. Null values
  /// are accepted in any column.
  Status AppendRow(std::vector<Value> row);

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.schema_ == b.schema_ && a.num_rows_ == b.num_rows_ &&
           a.columns_ == b.columns_;
  }

 private:
  Relation(Schema schema, std::vector<std::vector<Value>> columns)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(columns_.empty() ? 0 : columns_[0].size()) {}

  Relation(Schema schema, std::vector<std::vector<Value>> columns,
           size_t num_rows)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  size_t num_rows_ = 0;
};

/// Incremental row-wise construction helper.
class RelationBuilder {
 public:
  explicit RelationBuilder(Schema schema);

  /// Appends a row; returns *this for chaining in tests. Arity/type errors
  /// are deferred and reported by Finish().
  RelationBuilder& AddRow(std::vector<Value> row);

  /// Validates accumulated rows and produces the relation.
  Result<Relation> Finish();

 private:
  Schema schema_;
  std::vector<std::vector<Value>> columns_;
  Status deferred_error_;
};

/// Checks that `value` is storable in an attribute of `type` (nulls always
/// are). Int values are NOT accepted in double columns; loaders coerce.
bool ValueMatchesType(const Value& value, DataType type);

}  // namespace metaleak

#endif  // METALEAK_DATA_RELATION_H_
