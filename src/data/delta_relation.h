// Mutable delta counterpart of the immutable EncodedRelation snapshot.
//
// EncodedRelation's dense-code invariant — codes 1..K assigned in
// ascending Value order — is what lets every downstream consumer compare
// codes instead of Values. That invariant is fundamentally at odds with
// mutation: an inserted value that sorts into the middle of the
// dictionary would force a global renumber of codes, code vectors, and
// every cached PLI. DeltaRelation resolves the tension by splitting the
// two concerns:
//
//   * Between publishes, new values get *append-order* codes (next free
//     slot, tombstone revival included) so applying a batch never
//     renumbers anything. A side order-index — the codes 1..K kept
//     sorted by Value — is maintained incrementally so order queries
//     (and the eventual canonicalization) still see the dense-code
//     ordering without a sort at publish time.
//   * PublishCanonical() folds the accumulated drift back into canonical
//     form: live codes are renumbered by order-index rank, zero-count
//     tombstones dropped, and the fingerprint recomputed with Encode's
//     exact mixing sequence. The published EncodedRelation is
//     bit-identical to EncodedRelation::Encode of the same rows — the
//     exactness guarantee the incremental golden tests assert.
//
// After each publish the delta re-seeds itself into the canonical code
// space, so drift only ever accumulates within one batch window.
#ifndef METALEAK_DATA_DELTA_RELATION_H_
#define METALEAK_DATA_DELTA_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"

namespace metaleak {

/// Row-index translation for one delete+insert batch. Deletes compact
/// the surviving rows in order; inserts append after them.
struct RowRemap {
  static constexpr size_t kDeleted = static_cast<size_t>(-1);

  /// old_to_new[r] is the post-batch index of pre-batch row r, or
  /// kDeleted. Size = rows_before.
  std::vector<size_t> old_to_new;
  size_t rows_before = 0;
  /// Rows surviving the delete pass; inserted rows occupy
  /// [rows_surviving, rows_after).
  size_t rows_surviving = 0;
  size_t rows_after = 0;

  bool identity() const { return rows_before == rows_surviving; }
};

/// One mutation batch: deletes are pre-batch row indices (any order,
/// duplicates rejected), inserts are full rows in schema order. Deletes
/// apply before inserts.
struct RowBatch {
  std::vector<size_t> delete_rows;
  std::vector<std::vector<Value>> insert_rows;

  bool empty() const { return delete_rows.empty() && insert_rows.empty(); }
};

/// What a batch did, in the delta code space — everything the partition
/// and discovery maintenance layers need without re-deriving it.
struct BatchEffects {
  RowRemap remap;

  /// Per column: true when the batch changed the column's PLI clusters —
  /// a deleted row whose code had multiplicity >= 2 before the delete, or
  /// an inserted row whose code has multiplicity >= 2 after the insert.
  /// (A deleted singleton or inserted fresh value never appears in a
  /// stripped partition, so those leave the clusters untouched.)
  std::vector<bool> column_touched;

  /// Per column: true when the batch changed the column's set of live
  /// codes — a value (or NULL) appearing for the first time, reviving
  /// from a tombstone, or dropping to zero occurrences. Domain-sensitive
  /// validators (DD thresholds, ND fan-out slack, constant-column
  /// checks) key off this. Together with `column_touched` the two flags
  /// are exhaustive: any cell-level change to a column raises at least
  /// one of them.
  std::vector<bool> dictionary_touched;

  /// Per column, aligned with the sorted unique delete list: the delta
  /// code each deleted row carried.
  std::vector<std::vector<uint32_t>> deleted_codes;
  /// Per column, aligned with insert_rows: the delta code assigned to
  /// each inserted cell.
  std::vector<std::vector<uint32_t>> inserted_codes;

  /// Sorted unique pre-batch indices the batch deleted.
  std::vector<size_t> sorted_deletes;
};

/// Result of folding the delta back into an immutable snapshot.
struct PublishResult {
  /// Canonical encoding (source() == nullptr; the caller materializes
  /// the backing Relation via Decode and re-points it).
  EncodedRelation encoded;
  /// Per column: code_remap[c][delta_code] = canonical code. Tombstoned
  /// codes map to 0 alongside NULL; live maps are injective. Cached
  /// per-column partitions renumber through this instead of rebuilding.
  std::vector<std::vector<uint32_t>> code_remap;
};

/// The mutable half of the snapshot/delta split. Not thread-safe; the
/// service layer serializes batches per session.
class DeltaRelation {
 public:
  /// Seeds the delta from a canonical snapshot (codes copied; the
  /// snapshot itself is not retained).
  explicit DeltaRelation(const EncodedRelation& snapshot);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return codes_.size(); }

  /// Current (delta-space) code column of column `c`. Stored narrow;
  /// appends widen in place when a fresh value overflows the width.
  const CodeColumn& codes(size_t c) const { return codes_[c]; }

  /// Occurrences of `code` in column `c` (0 for tombstones).
  size_t code_count(size_t c, uint32_t code) const {
    return columns_[c].counts[code];
  }

  /// Codes of column `c` sorted by decoded Value ascending — the side
  /// order-index. Excludes NULL; tombstones keep their slot until the
  /// next publish.
  const std::vector<uint32_t>& order_index(size_t c) const {
    return columns_[c].order_index;
  }

  /// Applies one delete+insert batch. Validates row indices and value
  /// types against the schema; on error the delta is unchanged.
  Result<BatchEffects> ApplyBatch(const RowBatch& batch);

  /// Renumbers live codes into canonical (Value-rank) order, drops
  /// tombstones, recomputes the fingerprint, and re-seeds the delta into
  /// the canonical space.
  PublishResult PublishCanonical();

 private:
  struct ColumnState {
    std::vector<Value> values;    // [0] = NULL, rest in append order
    std::vector<size_t> counts;   // parallel to values
    std::vector<uint32_t> order_index;  // live+tombstone codes by Value
    std::unordered_map<Value, uint32_t> lookup;  // non-null value -> code
  };

  /// Returns the code for `v` in column `c`, appending (or reviving a
  /// tombstone slot for) unseen values. Maintains the order index.
  uint32_t EncodeCell(size_t c, const Value& v, bool* dict_changed);

  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<CodeColumn> codes_;  // [column], narrow delta-space codes
  std::vector<ColumnState> columns_;
};

}  // namespace metaleak

#endif  // METALEAK_DATA_DELTA_RELATION_H_
