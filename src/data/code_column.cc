#include "data/code_column.h"

#include <atomic>

namespace metaleak {

namespace {

// Floor override as the underlying byte width; 0 = none. Relaxed atomics
// are enough — overrides are installed between phases, never mid-build.
std::atomic<uint8_t> g_width_floor{0};

}  // namespace

const char* CodeWidthName(CodeWidth width) {
  switch (width) {
    case CodeWidth::kU8:
      return "u8";
    case CodeWidth::kU16:
      return "u16";
    case CodeWidth::kU32:
      return "u32";
  }
  return "unknown";
}

CodeWidth CodeWidthForNumCodes(uint64_t num_codes) {
  CodeWidth natural;
  if (num_codes <= 0xFFull) {
    natural = CodeWidth::kU8;
  } else if (num_codes <= 0xFFFFull) {
    natural = CodeWidth::kU16;
  } else {
    natural = CodeWidth::kU32;
  }
  const uint8_t floor = g_width_floor.load(std::memory_order_relaxed);
  if (floor > static_cast<uint8_t>(natural)) {
    return static_cast<CodeWidth>(floor);
  }
  return natural;
}

void SetCodeWidthFloorOverride(CodeWidth floor) {
  g_width_floor.store(static_cast<uint8_t>(floor),
                      std::memory_order_relaxed);
}

void ClearCodeWidthFloorOverride() {
  g_width_floor.store(0, std::memory_order_relaxed);
}

CodeColumn CodeColumn::FromU32(const std::vector<uint32_t>& codes,
                               CodeWidth width) {
  CodeColumn out(width);
  out.reserve(codes.size());
  for (uint32_t code : codes) out.push_back(code);
  return out;
}

size_t CodeColumn::size() const {
  switch (width_) {
    case CodeWidth::kU8:
      return v8_.size();
    case CodeWidth::kU16:
      return v16_.size();
    default:
      return v32_.size();
  }
}

void CodeColumn::clear() {
  v8_.clear();
  v16_.clear();
  v32_.clear();
}

void CodeColumn::resize(size_t n) {
  switch (width_) {
    case CodeWidth::kU8:
      v8_.resize(n);
      return;
    case CodeWidth::kU16:
      v16_.resize(n);
      return;
    default:
      v32_.resize(n);
      return;
  }
}

void CodeColumn::reserve(size_t n) {
  switch (width_) {
    case CodeWidth::kU8:
      v8_.reserve(n);
      return;
    case CodeWidth::kU16:
      v16_.reserve(n);
      return;
    default:
      v32_.reserve(n);
      return;
  }
}

void CodeColumn::assign(size_t n, uint32_t code) {
  if (code > CodeWidthSentinel(width_)) WidenTo(CodeWidthForNumCodes(code));
  switch (width_) {
    case CodeWidth::kU8:
      v8_.assign(n, static_cast<uint8_t>(code));
      return;
    case CodeWidth::kU16:
      v16_.assign(n, static_cast<uint16_t>(code));
      return;
    default:
      v32_.assign(n, code);
      return;
  }
}

void CodeColumn::set(size_t r, uint32_t code) {
  if (code > CodeWidthSentinel(width_)) {
    WidenTo(code > 0xFFFFu ? CodeWidth::kU32 : CodeWidth::kU16);
  }
  switch (width_) {
    case CodeWidth::kU8:
      v8_[r] = static_cast<uint8_t>(code);
      return;
    case CodeWidth::kU16:
      v16_[r] = static_cast<uint16_t>(code);
      return;
    default:
      v32_[r] = code;
      return;
  }
}

void CodeColumn::push_back(uint32_t code) {
  if (code > CodeWidthSentinel(width_)) {
    WidenTo(code > 0xFFFFu ? CodeWidth::kU32 : CodeWidth::kU16);
  }
  switch (width_) {
    case CodeWidth::kU8:
      v8_.push_back(static_cast<uint8_t>(code));
      return;
    case CodeWidth::kU16:
      v16_.push_back(static_cast<uint16_t>(code));
      return;
    default:
      v32_.push_back(code);
      return;
  }
}

void CodeColumn::WidenTo(CodeWidth width) {
  if (width == width_) return;
  METALEAK_DCHECK(static_cast<uint8_t>(width) >
                  static_cast<uint8_t>(width_));
  const size_t n = size();
  if (width == CodeWidth::kU16) {
    v16_.resize(n);
    for (size_t r = 0; r < n; ++r) v16_[r] = v8_[r];
    v8_.clear();
    v8_.shrink_to_fit();
  } else {
    v32_.resize(n);
    if (width_ == CodeWidth::kU8) {
      for (size_t r = 0; r < n; ++r) v32_[r] = v8_[r];
      v8_.clear();
      v8_.shrink_to_fit();
    } else {
      for (size_t r = 0; r < n; ++r) v32_[r] = v16_[r];
      v16_.clear();
      v16_.shrink_to_fit();
    }
  }
  width_ = width;
}

void CodeColumn::Reset(CodeWidth width) {
  clear();
  v8_.shrink_to_fit();
  v16_.shrink_to_fit();
  v32_.shrink_to_fit();
  width_ = width;
}

CodeColumnView CodeColumn::view() const {
  CodeColumnView out;
  out.width = width_;
  switch (width_) {
    case CodeWidth::kU8:
      out.data = v8_.data();
      out.size = v8_.size();
      break;
    case CodeWidth::kU16:
      out.data = v16_.data();
      out.size = v16_.size();
      break;
    default:
      out.data = v32_.data();
      out.size = v32_.size();
      break;
  }
  return out;
}

std::vector<uint32_t> CodeColumn::ToU32() const {
  if (width_ == CodeWidth::kU32) return v32_;
  const size_t n = size();
  std::vector<uint32_t> out(n);
  const CodeColumnView v = view();
  v.With([&](const auto* codes) {
    for (size_t r = 0; r < n; ++r) out[r] = codes[r];
  });
  return out;
}

bool CodeColumn::operator==(const CodeColumn& other) const {
  const size_t n = size();
  if (n != other.size()) return false;
  const CodeColumnView a = view();
  const CodeColumnView b = other.view();
  for (size_t r = 0; r < n; ++r) {
    if (a.at(r) != b.at(r)) return false;
  }
  return true;
}

// --- Width-dispatched kernel wrappers ------------------------------------

size_t CountEqualCodes(SimdLevel level, const CodeColumnView& a,
                       const CodeColumnView& b) {
  METALEAK_DCHECK(a.size == b.size);
  if (a.width == b.width) {
    switch (a.width) {
      case CodeWidth::kU8:
        return CountEqualU8(level, a.u8(), b.u8(), a.size);
      case CodeWidth::kU16:
        return CountEqualU16(level, a.u16(), b.u16(), a.size);
      default:
        return CountEqualU32(level, a.u32(), b.u32(), a.size);
    }
  }
  size_t count = 0;
  for (size_t r = 0; r < a.size; ++r) count += a.at(r) == b.at(r);
  return count;
}

void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const CodeColumnView& codes,
                             const double* code_numeric, double eps,
                             EpsilonBallStats* stats) {
  codes.With([&](const auto* ptr) {
    EpsilonBallMseCodedInto(level, real, ptr, code_numeric, codes.size, eps,
                            stats);
  });
}

void AccumulateEqualCodes(SimdLevel level, const CodeColumnView& a,
                          const CodeColumnView& b, uint32_t* acc) {
  METALEAK_DCHECK(a.size == b.size);
  if (a.width == b.width) {
    switch (a.width) {
      case CodeWidth::kU8:
        AccumulateEqualU8(level, a.u8(), b.u8(), a.size, acc);
        return;
      case CodeWidth::kU16:
        AccumulateEqualU16(level, a.u16(), b.u16(), a.size, acc);
        return;
      default:
        AccumulateEqualU32(level, a.u32(), b.u32(), a.size, acc);
        return;
    }
  }
  for (size_t r = 0; r < a.size; ++r) acc[r] += a.at(r) == b.at(r);
}

void AccumulateEpsilonMatchCodes(SimdLevel level, const double* real,
                                 const CodeColumnView& codes,
                                 const double* code_numeric, double eps,
                                 uint32_t* acc) {
  codes.With([&](const auto* ptr) {
    AccumulateEpsilonMatchCoded(level, real, ptr, code_numeric, codes.size,
                                eps, acc);
  });
}

void AccumulateNonNullCodes(SimdLevel level, const CodeColumnView& codes,
                            uint32_t* acc) {
  codes.With(
      [&](const auto* ptr) { AccumulateNonNull(level, ptr, codes.size, acc); });
}

void HistogramCodes(SimdLevel level, const CodeColumnView& codes,
                    uint32_t num_codes, uint32_t* counts) {
  switch (codes.width) {
    case CodeWidth::kU8:
      HistogramU8(level, codes.u8(), codes.size, num_codes, counts);
      return;
    case CodeWidth::kU16:
      HistogramU16(level, codes.u16(), codes.size, num_codes, counts);
      return;
    default:
      HistogramU32(level, codes.u32(), codes.size, num_codes, counts);
      return;
  }
}

}  // namespace metaleak
