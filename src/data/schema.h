// Schema: ordered list of named, typed attributes.
#ifndef METALEAK_DATA_SCHEMA_H_
#define METALEAK_DATA_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/type.h"

namespace metaleak {

/// One column descriptor.
struct Attribute {
  std::string name;
  DataType type = DataType::kString;
  SemanticType semantic = SemanticType::kCategorical;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.name == b.name && a.type == b.type && a.semantic == b.semantic;
  }
};

/// An immutable ordered attribute list with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Like IndexOf but returns a KeyError Status when missing.
  Result<size_t> RequireIndex(const std::string& name) const;

  /// Indices of all attributes with the given semantic type.
  std::vector<size_t> IndicesOf(SemanticType semantic) const;

  /// Schema containing only the attributes at `indices`, in that order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// "name:type/semantic, ..." — for debugging and golden tests.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.attributes_ == b.attributes_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace metaleak

#endif  // METALEAK_DATA_SCHEMA_H_
