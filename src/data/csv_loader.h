// Loads a Relation from CSV text/files with type inference.
#ifndef METALEAK_DATA_CSV_LOADER_H_
#define METALEAK_DATA_CSV_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace metaleak {

struct CsvLoadOptions {
  /// Treat the first row as the header (attribute names). When false,
  /// attributes are named "attr0", "attr1", ...
  bool has_header = true;
  /// Field values parsed as missing (NULL). "?" is the UCI convention.
  std::vector<std::string> null_markers = {"?", ""};
  /// Columns whose inferred physical type is numeric get this many distinct
  /// values or fewer treated as categorical rather than continuous.
  size_t categorical_distinct_threshold = 12;
  char delimiter = ',';
};

/// Parses CSV text into a typed relation.
///
/// Type inference per column: if every non-null field parses as int64 the
/// column is int64; else if every non-null field parses as double it is
/// double; otherwise string. Semantic inference: string columns are
/// categorical; numeric columns are categorical when their distinct count
/// is <= categorical_distinct_threshold, continuous otherwise.
Result<Relation> LoadCsvRelation(std::string_view text,
                                 const CsvLoadOptions& options = {});

/// Reads `path` and delegates to LoadCsvRelation.
Result<Relation> LoadCsvRelationFile(const std::string& path,
                                     const CsvLoadOptions& options = {});

/// Serializes a relation to CSV (header + rows; NULL renders as "?").
std::string RelationToCsv(const Relation& relation);

}  // namespace metaleak

#endif  // METALEAK_DATA_CSV_LOADER_H_
