// EncodedBatch: a reusable, dictionary-coded generation target.
//
// The attack pipeline's Monte-Carlo loop (generate R_syn, score leakage,
// repeat) used to materialize a boxed `Value` Relation per round. An
// EncodedBatch is the columnar arena the encoded generators write into
// instead: categorical columns hold dense uint32 codes into the
// *generation domain* (code 0 is reserved for NULL, matching
// ColumnDictionary::kNullCode; code i+1 means domain.values()[i]), and
// continuous columns hold raw doubles. Configure() fixes the per-column
// storage kind; ResetRows() re-arms the arena for the next round while
// keeping each column's capacity, so a thread that owns a batch
// allocates only on its first round.
#ifndef METALEAK_DATA_ENCODED_BATCH_H_
#define METALEAK_DATA_ENCODED_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/domain.h"
#include "data/relation.h"
#include "data/schema.h"

namespace metaleak {

class EncodedBatch {
 public:
  /// Storage kind of one column: dense domain codes (categorical
  /// domains) or raw doubles (continuous domains).
  enum class ColumnKind : uint8_t { kCodes, kReals };

  /// Sets the column layout. Existing storage is kept when the kinds
  /// are unchanged (the reuse fast path) and rebuilt otherwise.
  void Configure(const std::vector<ColumnKind>& kinds);

  /// Resizes every column to `num_rows`, keeping capacity.
  void ResetRows(size_t num_rows);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  ColumnKind kind(size_t c) const { return columns_[c].kind; }

  /// Code / real storage of column `c`; only the vector matching the
  /// column's kind is meaningful.
  std::vector<uint32_t>& codes(size_t c) { return columns_[c].codes; }
  const std::vector<uint32_t>& codes(size_t c) const {
    return columns_[c].codes;
  }
  std::vector<double>& reals(size_t c) { return columns_[c].reals; }
  const std::vector<double>& reals(size_t c) const {
    return columns_[c].reals;
  }

 private:
  struct Column {
    ColumnKind kind = ColumnKind::kCodes;
    std::vector<uint32_t> codes;
    std::vector<double> reals;
  };

  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// The storage kind each generation domain implies: codes for
/// categorical domains, raw doubles for continuous ones. Every consumer
/// of an EncodedBatch (generators, CFD repair, leakage evaluators)
/// derives its column layout through this one function so the layouts
/// always agree.
std::vector<EncodedBatch::ColumnKind> ColumnKindsForDomains(
    const std::vector<Domain>& domains);

/// Decodes a batch into a boxed-Value Relation over `schema`, applying
/// the same physical-type relaxation the value-path generator performs
/// (continuous domains produce doubles regardless of the disclosed
/// type; mixed int/double columns coerce to double). `domains` must be
/// the generation domains the batch was coded against. This is the
/// adapter boundary: Relation-returning public APIs call it once after
/// the encoded generators finish.
Result<Relation> MaterializeRelation(const Schema& schema,
                                     const std::vector<Domain>& domains,
                                     const EncodedBatch& batch);

}  // namespace metaleak

#endif  // METALEAK_DATA_ENCODED_BATCH_H_
