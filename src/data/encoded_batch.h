// EncodedBatch: a reusable, dictionary-coded generation target.
//
// The attack pipeline's Monte-Carlo loop (generate R_syn, score leakage,
// repeat) used to materialize a boxed `Value` Relation per round. An
// EncodedBatch is the columnar arena the encoded generators write into
// instead: categorical columns hold dense codes into the *generation
// domain* (code 0 is reserved for NULL, matching
// ColumnDictionary::kNullCode; code i+1 means domain.values()[i]), and
// continuous columns hold raw doubles. Code columns are stored at the
// narrowest width that fits their domain (data/code_column.h), so the
// leakage scans stream 1-4 bytes per cell. Configure() fixes the
// per-column storage kind and width; ResetRows() re-arms the arena for
// the next round while keeping each column's capacity, so a thread that
// owns a batch allocates only on its first round.
#ifndef METALEAK_DATA_ENCODED_BATCH_H_
#define METALEAK_DATA_ENCODED_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/code_column.h"
#include "data/domain.h"
#include "data/relation.h"
#include "data/schema.h"

namespace metaleak {

class EncodedBatch {
 public:
  /// Storage kind of one column: dense domain codes (categorical
  /// domains) or raw doubles (continuous domains).
  enum class ColumnKind : uint8_t { kCodes, kReals };

  /// Sets the column layout; `widths` is parallel to `kinds` and gives
  /// each code column's storage width (ignored for kReals columns).
  /// Existing storage is kept when the layout is unchanged (the reuse
  /// fast path) and rebuilt otherwise.
  void Configure(const std::vector<ColumnKind>& kinds,
                 const std::vector<CodeWidth>& widths);

  /// Layout with every code column at full u32 width.
  void Configure(const std::vector<ColumnKind>& kinds);

  /// Resizes every column to `num_rows`, keeping capacity.
  void ResetRows(size_t num_rows);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }

  ColumnKind kind(size_t c) const { return columns_[c].kind; }

  /// Narrow code storage of column `c` (meaningful for kCodes columns).
  const CodeColumn& code_column(size_t c) const { return columns_[c].codes; }
  CodeColumn& code_column(size_t c) { return columns_[c].codes; }

  /// Width-tagged read view of column `c`'s codes.
  CodeColumnView code_view(size_t c) const { return columns_[c].codes.view(); }

  /// Single-cell code access; set_code widens the column if needed.
  uint32_t code_at(size_t c, size_t r) const { return columns_[c].codes.at(r); }
  void set_code(size_t c, size_t r, uint32_t code) {
    columns_[c].codes.set(r, code);
  }

  /// Invokes fn with the typed mutable code pointer of column `c` —
  /// the bulk-write path for the encoded generators. The column's size
  /// and width must not change inside fn.
  template <typename Fn>
  decltype(auto) WithMutableCodes(size_t c, Fn&& fn) {
    return columns_[c].codes.WithMutable(std::forward<Fn>(fn));
  }

  /// Invokes fn with the typed const code pointer of column `c`.
  template <typename Fn>
  decltype(auto) WithCodes(size_t c, Fn&& fn) const {
    return columns_[c].codes.With(std::forward<Fn>(fn));
  }

  std::vector<double>& reals(size_t c) { return columns_[c].reals; }
  const std::vector<double>& reals(size_t c) const {
    return columns_[c].reals;
  }

 private:
  struct Column {
    ColumnKind kind = ColumnKind::kCodes;
    CodeColumn codes;
    std::vector<double> reals;
  };

  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// The storage width each generation domain implies for its code
/// column: narrowest width fitting codes 0..|domain| (NULL plus one
/// code per domain value). kReals columns get u32 as a don't-care.
std::vector<CodeWidth> CodeWidthsForDomains(const std::vector<Domain>& domains);

/// The storage kind each generation domain implies: codes for
/// categorical domains, raw doubles for continuous ones. Every consumer
/// of an EncodedBatch (generators, CFD repair, leakage evaluators)
/// derives its column layout through this one function so the layouts
/// always agree.
std::vector<EncodedBatch::ColumnKind> ColumnKindsForDomains(
    const std::vector<Domain>& domains);

/// Decodes a batch into a boxed-Value Relation over `schema`, applying
/// the same physical-type relaxation the value-path generator performs
/// (continuous domains produce doubles regardless of the disclosed
/// type; mixed int/double columns coerce to double). `domains` must be
/// the generation domains the batch was coded against. This is the
/// adapter boundary: Relation-returning public APIs call it once after
/// the encoded generators finish.
Result<Relation> MaterializeRelation(const Schema& schema,
                                     const std::vector<Domain>& domains,
                                     const EncodedBatch& batch);

}  // namespace metaleak

#endif  // METALEAK_DATA_ENCODED_BATCH_H_
