// EncodedRelation: dictionary-encoded columnar view of a Relation.
//
// Every hot path in the library — PLI construction, TANE's lattice
// search, OD/ND/DD validation, identifiability scans, leakage setup —
// ultimately groups or compares cells. Doing that on `Value` (a
// std::variant) costs a hash + variant dispatch per cell. TANE-style
// systems instead operate on *integer-coded* columns; this layer computes
// that coding once per relation and lets every consumer run on dense
// integer codes. Columns are stored at the narrowest code width that
// fits their dictionary (see data/code_column.h), so scans stream 1-4
// bytes per cell instead of a fixed 4; consumers that still need a
// `uint32_t` vector get one through a per-column lazily materialized
// cache.
//
// Coding scheme, per column:
//   * code 0 is reserved for NULL (whether or not the column contains
//     NULLs), preserving the library-wide NULL == NULL convention from
//     value.h: all NULL cells share one code, exactly one equivalence
//     class.
//   * distinct non-null values get codes 1..K assigned in ascending
//     `Value` order. Columns are uniformly typed (Relation::Make /
//     AppendRow enforce this), so `Value`'s total order is a strict total
//     order within a column and the assignment is *order-preserving*:
//     code(a) < code(b) iff a < b, and code(a) == code(b) iff a == b.
//     Order-dependency checks can therefore compare codes directly.
//
// The dictionaries double as precomputed per-column statistics: sorted
// distinct values (= the categorical Domain), value frequencies (= the
// frequency table / marginal), and min/max of the numeric values
// (= the continuous Domain) all read straight out of the dictionary
// instead of re-scanning the column.
#ifndef METALEAK_DATA_ENCODED_RELATION_H_
#define METALEAK_DATA_ENCODED_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "data/code_column.h"
#include "data/domain.h"
#include "data/relation.h"
#include "data/schema.h"
#include "data/value.h"

namespace metaleak {

/// Per-column code book. decode(0) is always NULL; decode(1..K) lists the
/// distinct non-null values in ascending Value order.
class ColumnDictionary {
 public:
  /// The reserved NULL code.
  static constexpr uint32_t kNullCode = 0;

  /// Number of codes including the reserved NULL slot; valid codes are
  /// [0, num_codes()).
  uint32_t num_codes() const {
    return static_cast<uint32_t>(values_.size());
  }

  /// Distinct non-null values in the column (== num_codes() - 1).
  size_t num_distinct() const { return values_.size() - 1; }

  /// True when the column actually contains NULL cells (code 0 occurs).
  bool has_null() const { return null_count_ > 0; }
  size_t null_count() const { return null_count_; }

  /// The value behind `code` (NULL for code 0).
  const Value& decode(uint32_t code) const { return values_[code]; }

  /// Occurrences of `code` in the column. counts(0) == null_count().
  size_t count(uint32_t code) const { return counts_[code]; }

  /// Sorted distinct non-null values — the categorical domain, for free.
  /// The returned view skips the NULL slot.
  std::vector<Value> DistinctValues() const {
    return std::vector<Value>(values_.begin() + 1, values_.end());
  }

  /// Per-code numeric view: out[code] is the numeric value behind
  /// `code`, or NaN for NULL and non-numeric entries. Lets batch-style
  /// consumers (the code-path leakage evaluators, tuple risk) compare
  /// cells without decoding a Value per row.
  std::vector<double> NumericByCode() const;

  /// Assembles a dictionary from canonical parts: `values` must start
  /// with Value::Null() and continue with the distinct non-null values in
  /// ascending Value order; `counts` is parallel (counts[0] = NULL
  /// occurrences). Used by the delta layer when it publishes a snapshot —
  /// the result is indistinguishable from the dictionary Encode builds.
  static ColumnDictionary FromSortedParts(std::vector<Value> values,
                                          std::vector<size_t> counts);

 private:
  friend class EncodedRelation;

  std::vector<Value> values_;   // values_[0] == Value::Null()
  std::vector<size_t> counts_;  // parallel to values_
  size_t null_count_ = 0;
};

/// The dictionary-encoded relation. Construction (`Encode`) is O(N log D)
/// per column; afterwards every consumer works on dense codes. The source
/// relation must outlive the encoding (the encoding keeps a non-owning
/// pointer for consumers that still need raw values, e.g. CFD discovery).
class EncodedRelation {
 public:
  EncodedRelation() = default;

  // Copies deep-copy the narrow columns but start with a fresh (empty)
  // u32 compatibility cache; moves carry the cache along.
  EncodedRelation(const EncodedRelation& other);
  EncodedRelation& operator=(const EncodedRelation& other);
  EncodedRelation(EncodedRelation&&) = default;
  EncodedRelation& operator=(EncodedRelation&&) = default;

  /// Encodes `relation`. Never fails: every Value is encodable.
  static EncodedRelation Encode(const Relation& relation);

  /// Assembles an encoding from already-canonical parts: per-column code
  /// vectors and dictionaries in the exact form Encode would produce
  /// (NULL code 0, dense order-preserving codes, counts populated). The
  /// fingerprint is recomputed with Encode's mixing sequence, so equal
  /// content yields an equal fingerprint regardless of which path built
  /// it. `source` may be null when no backing Relation exists yet.
  /// Columns are re-narrowed to their dictionary's natural width.
  static EncodedRelation FromParts(Schema schema,
                                   std::vector<std::vector<uint32_t>> codes,
                                   std::vector<ColumnDictionary> dicts,
                                   const Relation* source);

  /// FromParts for callers that already hold narrow columns (the delta
  /// layer's publish path). Column widths are kept as-is; they must fit
  /// the dictionaries.
  static EncodedRelation FromParts(Schema schema,
                                   std::vector<CodeColumn> columns,
                                   std::vector<ColumnDictionary> dicts,
                                   const Relation* source);

  /// Re-points the non-owning source pointer, e.g. after the caller
  /// materializes (and takes ownership of) the decoded relation.
  void set_source(const Relation* source) { source_ = source; }

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// The source relation this encoding was built from (non-owning).
  const Relation* source() const { return source_; }

  /// Dense code vector of column `c` widened to u32 (one code per row).
  /// For u32-width columns this is the native storage; narrower columns
  /// materialize a widened copy on first use and cache it for the
  /// encoding's lifetime. Hot paths should prefer column_view(c), which
  /// streams the narrow bytes directly. Thread-safe.
  const std::vector<uint32_t>& codes(size_t c) const;

  /// Width-tagged view of column `c`'s native narrow storage — the
  /// bandwidth-proportional access path.
  CodeColumnView column_view(size_t c) const { return columns_[c].view(); }

  /// Column `c`'s narrow storage.
  const CodeColumn& column(size_t c) const { return columns_[c]; }

  /// Storage width of column `c`.
  CodeWidth column_width(size_t c) const { return columns_[c].width(); }

  /// Code of cell (row, col).
  uint32_t code_at(size_t row, size_t col) const {
    return columns_[col].at(row);
  }

  const ColumnDictionary& dictionary(size_t c) const { return dicts_[c]; }

  /// True iff cell (row, col) is NULL.
  bool is_null(size_t row, size_t col) const {
    return columns_[col].at(row) == ColumnDictionary::kNullCode;
  }

  /// Rebuilds the original relation from codes + dictionaries. Round-trip
  /// identity: Decode(Encode(r)) == r.
  Result<Relation> Decode() const;

  /// Stable 64-bit fingerprint of the encoded content (schema shape,
  /// dictionaries, code vectors). Two relations with equal fingerprints
  /// encode the same data; used to key PLI caches across relations.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// The attribute's domain, read from the dictionary: distinct non-null
  /// values for categorical attributes, numeric [min, max] for continuous
  /// ones. Matches ExtractDomain(relation, c) exactly.
  Result<Domain> DomainOf(size_t c) const;

  /// All attribute domains (see DomainOf).
  Result<std::vector<Domain>> Domains() const;

 private:
  // Lazily materialized u32 widening of one narrow column, for the
  // codes(c) compatibility accessor. Heap-allocated so the containing
  // vector stays movable despite std::once_flag being immovable.
  struct LazyU32 {
    std::once_flag once;
    std::vector<uint32_t> codes;
  };

  // (Re)creates one empty cache slot per column.
  void InitU32Cache();

  // Mixes schema shape, dictionaries, and code vectors with Encode's
  // sequence. Codes are mixed as widened u64 values, so the fingerprint
  // is independent of storage width.
  uint64_t ComputeFingerprint() const;

  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<CodeColumn> columns_;  // [column], narrow storage
  std::vector<ColumnDictionary> dicts_;
  uint64_t fingerprint_ = 0;
  const Relation* source_ = nullptr;
  mutable std::vector<std::unique_ptr<LazyU32>> u32_cache_;
};

}  // namespace metaleak

#endif  // METALEAK_DATA_ENCODED_RELATION_H_
