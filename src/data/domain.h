// Domain: the value space of an attribute, as disclosed in metadata.
//
// This is Dom(A)/D_A from the paper. A party that shares "attribute name +
// domain" discloses exactly a Domain object; the adversary's random
// generator samples uniformly from it (the paper's undisclosed-distribution
// assumption).
#ifndef METALEAK_DATA_DOMAIN_H_
#define METALEAK_DATA_DOMAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "data/relation.h"
#include "data/value.h"

namespace metaleak {

/// Either a finite categorical value set or a continuous [min, max] range.
class Domain {
 public:
  Domain() = default;

  /// Finite domain listing every admissible value (sorted, deduplicated by
  /// the factory). |D_A| = values.size().
  static Domain Categorical(std::vector<Value> values);

  /// Continuous range [lo, hi]. |D_A| is taken as (hi - lo) when the
  /// analytical model needs a "size" (the paper's range(X)).
  static Domain Continuous(double lo, double hi);

  bool is_categorical() const { return categorical_; }
  bool is_continuous() const { return !categorical_; }

  /// Categorical accessors.
  const std::vector<Value>& values() const { return values_; }

  /// Continuous accessors.
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double range() const { return hi_ - lo_; }

  /// Cardinality proxy: value count for categorical domains, range width
  /// for continuous ones (> 0 guarded by callers). This is the |D_A| that
  /// appears in every expectation formula.
  double Size() const;

  /// Draws a value uniformly from the domain.
  Value Sample(Rng* rng) const;

  /// True if `v` lies inside the domain (exact membership for categorical,
  /// closed-interval containment for continuous).
  bool Contains(const Value& v) const;

  std::string ToString() const;

  friend bool operator==(const Domain& a, const Domain& b);

 private:
  bool categorical_ = true;
  std::vector<Value> values_;  // categorical only
  double lo_ = 0.0;            // continuous only
  double hi_ = 0.0;
};

/// Extracts per-attribute domains from a relation: categorical attributes
/// yield their distinct non-null value set; continuous attributes yield the
/// observed [min, max]. Fails if a continuous attribute has no non-null
/// numeric values.
Result<std::vector<Domain>> ExtractDomains(const Relation& relation);

/// Extracts the domain of a single attribute (see ExtractDomains).
Result<Domain> ExtractDomain(const Relation& relation, size_t attribute);

}  // namespace metaleak

#endif  // METALEAK_DATA_DOMAIN_H_
