// Value: a single nullable relational cell.
#ifndef METALEAK_DATA_VALUE_H_
#define METALEAK_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "data/type.h"

namespace metaleak {

/// A dynamically typed, nullable cell value.
///
/// Null semantics: for dependency validation MetaLeak treats NULL as a
/// distinct value equal only to itself (the convention TANE and most FD
/// discovery systems use), so relations with missing values — like
/// echocardiogram — can still be profiled.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(repr_);
  }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(repr_);
  }

  /// Typed accessors; calling the wrong one is a programming error.
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: ints and doubles coerce to double; 0.0 for null/string.
  /// Use is_numeric() to guard.
  double AsNumeric() const;
  bool is_numeric() const { return is_int() || is_double(); }

  /// Renders the value for CSV output and debugging; NULL renders as "?"
  /// (the echocardiogram missing-value marker).
  std::string ToString() const;

  /// Structural equality: null == null, cross-type numeric values do NOT
  /// compare equal (Int(1) != Real(1.0)); dependency semantics operate on
  /// uniformly typed columns.
  friend bool operator==(const Value& a, const Value& b) {
    return a.repr_ == b.repr_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order used for sorting / order-dependency checks: null first,
  /// then by numeric value (ints and doubles interleaved), then strings
  /// lexicographically.
  friend bool operator<(const Value& a, const Value& b);

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  using Repr = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace metaleak

namespace std {
template <>
struct hash<metaleak::Value> {
  size_t operator()(const metaleak::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // METALEAK_DATA_VALUE_H_
