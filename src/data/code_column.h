// Adaptive-width dense code storage: the bandwidth half of the encoded
// substrate.
//
// A dictionary column with K codes never needs 32 bits per cell — a u8
// column streams 1/4 of the bytes through every compare/count/histogram
// scan, and the AVX2 kernels process 32 lanes per vector instead of 8.
// CodeColumn stores one column of dense codes at the narrowest width
// that fits its dictionary, widening in place when an append overflows
// (the DeltaRelation ingest path). CodeColumnView is the non-owning
// width-tagged read view every kernel consumer dispatches on.
//
// Width-selection rule: a column with codes 0..num_codes-1 picks the
// narrowest width whose ALL-ONES value stays free — u8 iff num_codes <=
// 255, u16 iff num_codes <= 65535, else u32. The reserved all-ones
// value (CodeWidthSentinel) is the per-width "no match" marker the
// leakage translation arrays use, so a translated real column and a
// generated synthetic column over the same domain always agree on width
// and the compare kernels run symmetric narrow-vs-narrow.
//
// Forced-width floor: SetCodeWidthFloorOverride raises the minimum
// width globally. The golden width-parity suites force {u8,u16,u32} and
// assert bit-identical results; the scale bench forces u32 to measure
// the narrow-width speedup against the old full-width layout.
#ifndef METALEAK_DATA_CODE_COLUMN_H_
#define METALEAK_DATA_CODE_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/simd.h"

namespace metaleak {

/// Storage width of a dense-code column, as bytes per code.
enum class CodeWidth : uint8_t { kU8 = 1, kU16 = 2, kU32 = 4 };

/// "u8", "u16", "u32".
const char* CodeWidthName(CodeWidth width);

inline size_t CodeWidthBytes(CodeWidth width) {
  return static_cast<size_t>(width);
}

/// Largest value storable at `width` — reserved as the per-width
/// no-match sentinel by the width-selection rule.
inline uint32_t CodeWidthSentinel(CodeWidth width) {
  switch (width) {
    case CodeWidth::kU8:
      return 0xFFu;
    case CodeWidth::kU16:
      return 0xFFFFu;
    default:
      return 0xFFFFFFFFu;
  }
}

/// Narrowest width for a column whose codes lie in [0, num_codes),
/// keeping the all-ones sentinel free, and honoring the floor override.
CodeWidth CodeWidthForNumCodes(uint64_t num_codes);

/// Raises the global minimum width (width-parity tests, the u32 bench
/// baseline). Must not be called while columns are being built on other
/// threads.
void SetCodeWidthFloorOverride(CodeWidth floor);
void ClearCodeWidthFloorOverride();

/// Non-owning width-tagged view of a code column. The kernel-facing
/// currency: hot paths read codes through a view and dispatch once on
/// the width tag.
struct CodeColumnView {
  const void* data = nullptr;
  size_t size = 0;
  CodeWidth width = CodeWidth::kU32;

  const uint8_t* u8() const { return static_cast<const uint8_t*>(data); }
  const uint16_t* u16() const { return static_cast<const uint16_t*>(data); }
  const uint32_t* u32() const { return static_cast<const uint32_t*>(data); }

  /// Widened single-cell read.
  uint32_t at(size_t r) const {
    METALEAK_DCHECK(r < size);
    switch (width) {
      case CodeWidth::kU8:
        return u8()[r];
      case CodeWidth::kU16:
        return u16()[r];
      default:
        return u32()[r];
    }
  }

  /// Invokes fn with the typed pointer (const uint8_t* / const uint16_t*
  /// / const uint32_t*). The generic-lambda dispatch for loops that are
  /// width-agnostic at the source level.
  template <typename Fn>
  decltype(auto) With(Fn&& fn) const {
    switch (width) {
      case CodeWidth::kU8:
        return fn(u8());
      case CodeWidth::kU16:
        return fn(u16());
      default:
        return fn(u32());
    }
  }

  /// Subrange view over rows [lo, lo + len).
  CodeColumnView Slice(size_t lo, size_t len) const {
    METALEAK_DCHECK(lo + len <= size);
    CodeColumnView out;
    out.width = width;
    out.size = len;
    out.data = static_cast<const uint8_t*>(data) + lo * CodeWidthBytes(width);
    return out;
  }
};

/// Owning adaptive-width code column. Stores every cell at `width()`
/// bytes; set/push_back widen the whole column in place when a code
/// exceeds the current width's range (value-preserving, so widening is
/// invisible to readers going through at()/view()).
class CodeColumn {
 public:
  CodeColumn() = default;
  explicit CodeColumn(CodeWidth width) : width_(width) {}

  /// Column sized for codes in [0, num_codes) via the selection rule.
  static CodeColumn ForNumCodes(uint64_t num_codes) {
    return CodeColumn(CodeWidthForNumCodes(num_codes));
  }

  /// Widened copy of arbitrary u32 codes at the given width (codes must
  /// fit; DCHECK-enforced).
  static CodeColumn FromU32(const std::vector<uint32_t>& codes,
                            CodeWidth width);

  CodeWidth width() const { return width_; }
  size_t size() const;
  bool empty() const { return size() == 0; }

  void clear();
  void resize(size_t n);  // zero-fills new cells
  void reserve(size_t n);
  void assign(size_t n, uint32_t code);

  uint32_t at(size_t r) const { return view().at(r); }

  /// Writes one cell, widening the column first if `code` does not fit.
  void set(size_t r, uint32_t code);

  /// Appends one cell, widening the column first if `code` does not fit
  /// (the DeltaRelation widen-on-overflow path).
  void push_back(uint32_t code);

  /// Re-encodes every cell at `width` (>= current; narrowing is a bug).
  void WidenTo(CodeWidth width);

  /// Drops the contents and switches to `width`.
  void Reset(CodeWidth width);

  CodeColumnView view() const;

  /// Widened u32 copy (compatibility shims and tests).
  std::vector<uint32_t> ToU32() const;

  /// The native u32 vector; only valid when width() == kU32. Lets the
  /// u32 compatibility accessors hand out the storage without a copy.
  const std::vector<uint32_t>& u32_vector() const {
    METALEAK_DCHECK(width_ == CodeWidth::kU32);
    return v32_;
  }

  /// Invokes fn with the typed const pointer.
  template <typename Fn>
  decltype(auto) With(Fn&& fn) const {
    return view().With(std::forward<Fn>(fn));
  }

  /// Invokes fn with the typed mutable pointer. The column's size and
  /// width must not change inside fn.
  template <typename Fn>
  decltype(auto) WithMutable(Fn&& fn) {
    switch (width_) {
      case CodeWidth::kU8:
        return fn(v8_.data());
      case CodeWidth::kU16:
        return fn(v16_.data());
      default:
        return fn(v32_.data());
    }
  }

  /// Value equality (width-insensitive).
  bool operator==(const CodeColumn& other) const;
  bool operator!=(const CodeColumn& other) const {
    return !(*this == other);
  }

 private:
  // Exactly one of the three vectors (selected by width_) is active;
  // typed vectors rather than one byte buffer keep strict aliasing and
  // alignment trivially correct.
  std::vector<uint8_t> v8_;
  std::vector<uint16_t> v16_;
  std::vector<uint32_t> v32_;
  CodeWidth width_ = CodeWidth::kU32;
};

// --- Width-dispatched kernel wrappers ------------------------------------
//
// Thin adapters from CodeColumnView to the typed kernels in
// common/simd.h. Views of unequal width fall back to a widened scalar
// compare (correct, slower) — the width-selection rule makes matched
// widths the invariant case.

/// Number of rows where a.at(r) == b.at(r). Sizes must match.
size_t CountEqualCodes(SimdLevel level, const CodeColumnView& a,
                       const CodeColumnView& b);

/// Carried fused Def 2.2/2.3 coded scan over `codes`.
void EpsilonBallMseCodedInto(SimdLevel level, const double* real,
                             const CodeColumnView& codes,
                             const double* code_numeric, double eps,
                             EpsilonBallStats* stats);

/// acc[r] += (a.at(r) == b.at(r)). Sizes must match.
void AccumulateEqualCodes(SimdLevel level, const CodeColumnView& a,
                          const CodeColumnView& b, uint32_t* acc);

/// acc[r] += (|real[r] - code_numeric[codes.at(r)]| <= eps).
void AccumulateEpsilonMatchCodes(SimdLevel level, const double* real,
                                 const CodeColumnView& codes,
                                 const double* code_numeric, double eps,
                                 uint32_t* acc);

/// acc[r] += (codes.at(r) != 0).
void AccumulateNonNullCodes(SimdLevel level, const CodeColumnView& codes,
                            uint32_t* acc);

/// counts[codes.at(r)] += 1 for every row; counts has num_codes entries
/// and is not cleared first.
void HistogramCodes(SimdLevel level, const CodeColumnView& codes,
                    uint32_t num_codes, uint32_t* counts);

}  // namespace metaleak

#endif  // METALEAK_DATA_CODE_COLUMN_H_
