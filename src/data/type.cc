#include "data/type.h"

namespace metaleak {

std::string DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "unknown";
}

std::string SemanticTypeToString(SemanticType type) {
  switch (type) {
    case SemanticType::kCategorical:
      return "categorical";
    case SemanticType::kContinuous:
      return "continuous";
  }
  return "unknown";
}

SemanticType DefaultSemanticType(DataType type) {
  switch (type) {
    case DataType::kDouble:
      return SemanticType::kContinuous;
    case DataType::kInt64:
    case DataType::kString:
      return SemanticType::kCategorical;
  }
  return SemanticType::kCategorical;
}

}  // namespace metaleak
