#include "data/value.h"

#include <cmath>

#include "common/string_util.h"

namespace metaleak {

double Value::AsNumeric() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  return 0.0;
}

std::string Value::ToString() const {
  if (is_null()) return "?";
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble(), 6);
  return AsString();
}

bool operator<(const Value& a, const Value& b) {
  // Rank: null < numeric < string.
  auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ra = rank(a);
  int rb = rank(b);
  if (ra != rb) return ra < rb;
  if (ra == 0) return false;  // null == null
  if (ra == 1) {
    double da = a.AsNumeric();
    double db = b.AsNumeric();
    if (da != db) return da < db;
    // Tie-break int vs double so ordering is consistent with operator==.
    return a.is_int() && b.is_double();
  }
  return a.AsString() < b.AsString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_int()) return std::hash<int64_t>{}(AsInt()) * 3u;
  if (is_double()) return std::hash<double>{}(AsDouble()) * 5u;
  return std::hash<std::string>{}(AsString()) * 7u;
}

}  // namespace metaleak
