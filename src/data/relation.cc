#include "data/relation.h"

#include <sstream>

#include "common/macros.h"
#include "common/table_printer.h"

namespace metaleak {

bool ValueMatchesType(const Value& value, DataType type) {
  if (value.is_null()) return true;
  switch (type) {
    case DataType::kInt64:
      return value.is_int();
    case DataType::kDouble:
      return value.is_double();
    case DataType::kString:
      return value.is_string();
  }
  return false;
}

Result<Relation> Relation::Make(Schema schema,
                                std::vector<std::vector<Value>> columns) {
  if (columns.size() != schema.num_attributes()) {
    return Status::Invalid("column count " + std::to_string(columns.size()) +
                           " does not match schema arity " +
                           std::to_string(schema.num_attributes()));
  }
  for (size_t c = 1; c < columns.size(); ++c) {
    if (columns[c].size() != columns[0].size()) {
      return Status::Invalid("ragged columns: column " + std::to_string(c) +
                             " has " + std::to_string(columns[c].size()) +
                             " rows, expected " +
                             std::to_string(columns[0].size()));
    }
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    for (const Value& v : columns[c]) {
      if (!ValueMatchesType(v, schema.attribute(c).type)) {
        return Status::TypeError("value '" + v.ToString() +
                                 "' does not match type of attribute '" +
                                 schema.attribute(c).name + "'");
      }
    }
  }
  return Relation(std::move(schema), std::move(columns));
}

Relation Relation::Empty(Schema schema) {
  std::vector<std::vector<Value>> columns(schema.num_attributes());
  return Relation(std::move(schema), std::move(columns));
}

std::vector<Value> Relation::Row(size_t row) const {
  METALEAK_DCHECK(row < num_rows());
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Relation Relation::Project(const std::vector<size_t>& indices) const {
  std::vector<std::vector<Value>> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) {
    METALEAK_DCHECK(i < columns_.size());
    cols.push_back(columns_[i]);
  }
  // Projection preserves the row count even when projecting onto the
  // empty attribute list.
  return Relation(schema_.Project(indices), std::move(cols), num_rows_);
}

Relation Relation::SelectRows(const std::vector<size_t>& rows) const {
  std::vector<std::vector<Value>> cols(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    cols[c].reserve(rows.size());
    for (size_t r : rows) {
      METALEAK_DCHECK(r < num_rows());
      cols[c].push_back(columns_[c][r]);
    }
  }
  return Relation(schema_, std::move(cols), rows.size());
}

Status Relation::AppendRow(std::vector<Value> row) {
  if (row.size() != columns_.size()) {
    return Status::Invalid("row arity " + std::to_string(row.size()) +
                           " does not match schema arity " +
                           std::to_string(columns_.size()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (!ValueMatchesType(row[c], schema_.attribute(c).type)) {
      return Status::TypeError("value '" + row[c].ToString() +
                               "' does not match type of attribute '" +
                               schema_.attribute(c).name + "'");
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  // Count the row even for zero-column schemas, where there is no column
  // vector to infer the count from.
  ++num_rows_;
  return Status::OK();
}

std::string Relation::ToString(size_t max_rows) const {
  TablePrinter printer;
  std::vector<std::string> header;
  header.reserve(schema_.num_attributes());
  for (const Attribute& a : schema_.attributes()) header.push_back(a.name);
  printer.SetHeader(std::move(header));
  size_t limit = std::min(max_rows, num_rows());
  for (size_t r = 0; r < limit; ++r) {
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(columns_[c][r].ToString());
    }
    printer.AddRow(std::move(cells));
  }
  std::string out = printer.ToString();
  if (limit < num_rows()) {
    out += "... (" + std::to_string(num_rows() - limit) + " more rows)\n";
  }
  return out;
}

RelationBuilder::RelationBuilder(Schema schema)
    : schema_(std::move(schema)), columns_(schema_.num_attributes()) {}

RelationBuilder& RelationBuilder::AddRow(std::vector<Value> row) {
  if (!deferred_error_.ok()) return *this;
  if (row.size() != columns_.size()) {
    deferred_error_ =
        Status::Invalid("row arity " + std::to_string(row.size()) +
                        " does not match schema arity " +
                        std::to_string(columns_.size()));
    return *this;
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (!ValueMatchesType(row[c], schema_.attribute(c).type)) {
      deferred_error_ =
          Status::TypeError("value '" + row[c].ToString() +
                            "' does not match type of attribute '" +
                            schema_.attribute(c).name + "'");
      return *this;
    }
  }
  for (size_t c = 0; c < row.size(); ++c) {
    columns_[c].push_back(std::move(row[c]));
  }
  return *this;
}

Result<Relation> RelationBuilder::Finish() {
  if (!deferred_error_.ok()) return deferred_error_;
  return Relation::Make(std::move(schema_), std::move(columns_));
}

}  // namespace metaleak
