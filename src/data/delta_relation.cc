#include "data/delta_relation.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/macros.h"

namespace metaleak {

DeltaRelation::DeltaRelation(const EncodedRelation& snapshot)
    : schema_(snapshot.schema()), num_rows_(snapshot.num_rows()) {
  const size_t m = snapshot.num_columns();
  codes_.reserve(m);
  columns_.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    codes_.push_back(snapshot.column(c));
    const ColumnDictionary& dict = snapshot.dictionary(c);
    ColumnState state;
    state.values.reserve(dict.num_codes());
    state.counts.reserve(dict.num_codes());
    for (uint32_t code = 0; code < dict.num_codes(); ++code) {
      state.values.push_back(dict.decode(code));
      state.counts.push_back(dict.count(code));
    }
    // A canonical snapshot lists codes 1..K in ascending Value order, so
    // the seeded order index is the identity walk.
    state.order_index.reserve(dict.num_codes() - 1);
    state.lookup.reserve(dict.num_codes());
    for (uint32_t code = 1; code < dict.num_codes(); ++code) {
      state.order_index.push_back(code);
      state.lookup.emplace(state.values[code], code);
    }
    columns_.push_back(std::move(state));
  }
}

uint32_t DeltaRelation::EncodeCell(size_t c, const Value& v,
                                   bool* dict_changed) {
  if (v.is_null()) return ColumnDictionary::kNullCode;
  ColumnState& state = columns_[c];
  auto it = state.lookup.find(v);
  if (it != state.lookup.end()) {
    // Reviving a tombstone brings a value back into the live domain.
    if (state.counts[it->second] == 0) *dict_changed = true;
    return it->second;
  }
  const uint32_t code = static_cast<uint32_t>(state.values.size());
  state.values.push_back(v);
  state.counts.push_back(0);
  // Keep the side order-index sorted by decoded Value: binary search for
  // the rank, O(K) vector insert. This is the structure that lets
  // PublishCanonical renumber by rank without sorting, and keeps order
  // queries valid mid-batch despite append-order codes.
  auto pos = std::lower_bound(
      state.order_index.begin(), state.order_index.end(), v,
      [&](uint32_t lhs, const Value& rhs) { return state.values[lhs] < rhs; });
  state.order_index.insert(pos, code);
  state.lookup.emplace(v, code);
  *dict_changed = true;
  return code;
}

Result<BatchEffects> DeltaRelation::ApplyBatch(const RowBatch& batch) {
  const size_t m = num_columns();
  // Validate everything before mutating any state.
  std::vector<size_t> deletes = batch.delete_rows;
  std::sort(deletes.begin(), deletes.end());
  if (!deletes.empty()) {
    if (deletes.back() >= num_rows_) {
      return Status::OutOfRange("delete row " +
                                std::to_string(deletes.back()) +
                                " out of range for " +
                                std::to_string(num_rows_) + " rows");
    }
    if (std::adjacent_find(deletes.begin(), deletes.end()) != deletes.end()) {
      return Status::Invalid("duplicate delete row in batch");
    }
  }
  for (const std::vector<Value>& row : batch.insert_rows) {
    if (row.size() != m) {
      return Status::Invalid("insert row has " + std::to_string(row.size()) +
                             " cells, schema has " + std::to_string(m));
    }
    for (size_t c = 0; c < m; ++c) {
      if (!ValueMatchesType(row[c], schema_.attribute(c).type)) {
        return Status::Invalid("insert value type mismatch in attribute '" +
                               schema_.attribute(c).name + "'");
      }
    }
  }

  BatchEffects effects;
  effects.sorted_deletes = std::move(deletes);
  effects.column_touched.assign(m, false);
  effects.dictionary_touched.assign(m, false);
  effects.deleted_codes.assign(m, {});
  effects.inserted_codes.assign(m, {});

  const size_t rows_before = num_rows_;
  const size_t rows_surviving = rows_before - effects.sorted_deletes.size();
  const size_t rows_after = rows_surviving + batch.insert_rows.size();
  effects.remap.rows_before = rows_before;
  effects.remap.rows_surviving = rows_surviving;
  effects.remap.rows_after = rows_after;
  effects.remap.old_to_new.assign(rows_before, RowRemap::kDeleted);
  {
    size_t next = 0;
    auto del = effects.sorted_deletes.begin();
    for (size_t r = 0; r < rows_before; ++r) {
      if (del != effects.sorted_deletes.end() && *del == r) {
        ++del;
        continue;
      }
      effects.remap.old_to_new[r] = next++;
    }
    METALEAK_DCHECK(next == rows_surviving);
  }

  // Delete pass: record codes, flag touched clusters, decrement counts.
  for (size_t c = 0; c < m; ++c) {
    ColumnState& state = columns_[c];
    effects.deleted_codes[c].reserve(effects.sorted_deletes.size());
    for (size_t r : effects.sorted_deletes) {
      const uint32_t code = codes_[c].at(r);
      effects.deleted_codes[c].push_back(code);
      // A row leaving a multiplicity->=2 bucket changes that cluster; a
      // deleted singleton was never in a stripped partition.
      if (state.counts[code] >= 2) effects.column_touched[c] = true;
      --state.counts[code];
      if (state.counts[code] == 0) {
        // Tombstone created (or the last NULL vanished): the live set of
        // the column changed.
        effects.dictionary_touched[c] = true;
      }
    }
  }

  // Compact the surviving rows in order (shared remap across columns).
  if (!effects.sorted_deletes.empty()) {
    for (size_t c = 0; c < m; ++c) {
      codes_[c].WithMutable([&](auto* codes) {
        size_t next = 0;
        for (size_t r = 0; r < rows_before; ++r) {
          if (effects.remap.old_to_new[r] == RowRemap::kDeleted) continue;
          codes[next++] = codes[r];
        }
        METALEAK_DCHECK(next == rows_surviving);
      });
      codes_[c].resize(rows_surviving);
    }
  }

  // Insert pass: encode cells (appending / reviving dictionary slots),
  // flag touched clusters, append codes.
  for (size_t c = 0; c < m; ++c) {
    effects.inserted_codes[c].reserve(batch.insert_rows.size());
    codes_[c].reserve(rows_after);
  }
  for (const std::vector<Value>& row : batch.insert_rows) {
    for (size_t c = 0; c < m; ++c) {
      bool dict_changed = false;
      const uint32_t code = EncodeCell(c, row[c], &dict_changed);
      ColumnState& state = columns_[c];
      // Any 0 -> 1 transition (fresh value, revived tombstone, first
      // NULL) changes the column's live set.
      if (dict_changed || state.counts[code] == 0) {
        effects.dictionary_touched[c] = true;
      }
      ++state.counts[code];
      // Joining (or forming) a multiplicity->=2 bucket changes clusters.
      if (state.counts[code] >= 2) effects.column_touched[c] = true;
      effects.inserted_codes[c].push_back(code);
      codes_[c].push_back(code);
    }
  }
  num_rows_ = rows_after;
  return effects;
}

PublishResult DeltaRelation::PublishCanonical() {
  const size_t m = num_columns();
  PublishResult out;
  out.code_remap.resize(m);
  std::vector<CodeColumn> canonical_codes(m);
  std::vector<ColumnDictionary> dicts;
  dicts.reserve(m);

  for (size_t c = 0; c < m; ++c) {
    ColumnState& state = columns_[c];
    // Rank walk over the order index: live codes get canonical codes
    // 1..K in ascending Value order; tombstones fold into 0 (no row
    // carries them, so the shared slot is never dereferenced).
    std::vector<uint32_t>& remap = out.code_remap[c];
    remap.assign(state.values.size(), ColumnDictionary::kNullCode);
    std::vector<Value> canon_values;
    std::vector<size_t> canon_counts;
    canon_values.reserve(state.order_index.size() + 1);
    canon_counts.reserve(state.order_index.size() + 1);
    canon_values.push_back(Value::Null());
    canon_counts.push_back(state.counts[ColumnDictionary::kNullCode]);
    uint32_t next = 1;
    for (uint32_t code : state.order_index) {
      if (state.counts[code] == 0) continue;
      remap[code] = next++;
      canon_values.push_back(state.values[code]);
      canon_counts.push_back(state.counts[code]);
    }
    dicts.push_back(ColumnDictionary::FromSortedParts(
        std::move(canon_values), std::move(canon_counts)));

    // Publishing re-picks the canonical width from the live dictionary,
    // so a delta that widened mid-batch narrows back when possible.
    const size_t num_canon_codes = dicts.back().num_codes();
    CodeColumn& codes = canonical_codes[c];
    codes.Reset(CodeWidthForNumCodes(num_canon_codes));
    codes.reserve(codes_[c].size());
    const CodeColumnView delta_view = codes_[c].view();
    for (size_t r = 0; r < delta_view.size; ++r) {
      codes.push_back(remap[delta_view.at(r)]);
    }
  }

  out.encoded = EncodedRelation::FromParts(schema_, std::move(canonical_codes),
                                           std::move(dicts), nullptr);
  // Re-seed into the canonical space so drift only accumulates within a
  // single batch window.
  *this = DeltaRelation(out.encoded);
  return out;
}

}  // namespace metaleak
