// Physical and semantic attribute types.
#ifndef METALEAK_DATA_TYPE_H_
#define METALEAK_DATA_TYPE_H_

#include <string>

namespace metaleak {

/// Physical storage type of an attribute's values.
enum class DataType {
  kInt64,
  kDouble,
  kString,
};

/// Semantic role of an attribute in the privacy analysis. The paper's
/// leakage definitions split on this: categorical attributes use exact
/// matching at the same index (Definition 2.2), continuous attributes use
/// an epsilon-ball around the real value (Definition 2.3).
enum class SemanticType {
  kCategorical,
  kContinuous,
};

std::string DataTypeToString(DataType type);
std::string SemanticTypeToString(SemanticType type);

/// Default semantic role for a physical type: strings are categorical,
/// doubles are continuous, integers are categorical (they usually encode
/// codes/labels; loaders may override per attribute).
SemanticType DefaultSemanticType(DataType type);

}  // namespace metaleak

#endif  // METALEAK_DATA_TYPE_H_
