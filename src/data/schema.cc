#include "data/schema.h"

#include <sstream>

namespace metaleak {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireIndex(const std::string& name) const {
  std::optional<size_t> idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::KeyError("no attribute named '" + name + "'");
  }
  return *idx;
}

std::vector<size_t> Schema::IndicesOf(SemanticType semantic) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].semantic == semantic) out.push_back(i);
  }
  return out;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indices.size());
  for (size_t i : indices) attrs.push_back(attributes_[i]);
  return Schema(std::move(attrs));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name << ':' << DataTypeToString(attributes_[i].type)
       << '/' << SemanticTypeToString(attributes_[i].semantic);
  }
  return os.str();
}

}  // namespace metaleak
