// Deterministic replica of the UCI echocardiogram dataset.
//
// The paper's evaluation (Tables III and IV) profiles the UCI
// echocardiogram dataset (132 rows x 13 attributes) from the HPI data
// profiling repeatability project. That file is not redistributable inside
// this repository, so this module synthesizes a structurally faithful
// replica (documented in DESIGN.md):
//
//   * identical shape: 132 rows, 13 attributes with the UCI names;
//   * the same categorical/continuous split the paper uses
//     (continuous: 0, 2, 4, 5, 6, 7, 8, 9; categorical: 1, 3, 11, 12;
//     attribute 10 is the constant "name" column of the original);
//   * missing values ("?") sprinkled like the original;
//   * *planted* non-trivial dependencies of every class the paper needs:
//     strict FDs + order dependencies (wall-motion-score ->
//     wall-motion-index and epss -> lvdd, deterministic monotone
//     derivations as in the real data; survival -> alive-at-1 onto a
//     categorical attribute), a numerical dependency with fan-out 2
//     (still-alive ->(<=2) group over a 4-value group domain), and the
//     bounded-fan-out structure between still-alive and survival.
//
// Everything the privacy experiment measures depends only on domain sizes,
// dependency discoverability and row count; all three are preserved.
#ifndef METALEAK_DATA_DATASETS_ECHOCARDIOGRAM_H_
#define METALEAK_DATA_DATASETS_ECHOCARDIOGRAM_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "data/relation.h"

namespace metaleak {
namespace datasets {

/// Number of rows / attributes in the replica (matches UCI).
inline constexpr size_t kEchocardiogramRows = 132;
inline constexpr size_t kEchocardiogramAttributes = 13;

/// Builds the echocardiogram replica. Deterministic for a given seed; the
/// default seed reproduces the shipped experiment tables.
Relation Echocardiogram(uint64_t seed = 20240213);

/// Loads the *real* UCI echocardiogram.data file (comma separated, "?"
/// for missing values, no header) and applies the paper's schema: the
/// UCI attribute names and the categorical/continuous split used by
/// Tables III/IV. Use this to rerun the benches on the original data if
/// you have it; the repository itself ships only the replica.
Result<Relation> LoadEchocardiogramFile(const std::string& path);

}  // namespace datasets
}  // namespace metaleak

#endif  // METALEAK_DATA_DATASETS_ECHOCARDIOGRAM_H_
