#include "data/datasets/echocardiogram.h"

#include <cmath>

#include "common/macros.h"
#include "common/random.h"
#include "data/csv_loader.h"

namespace metaleak {
namespace datasets {

namespace {

double RoundTo(double x, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(x * scale) / scale;
}

}  // namespace

Relation Echocardiogram(uint64_t seed) {
  Schema schema({
      {"survival", DataType::kDouble, SemanticType::kContinuous},
      {"still_alive", DataType::kInt64, SemanticType::kCategorical},
      {"age_at_heart_attack", DataType::kDouble, SemanticType::kContinuous},
      {"pericardial_effusion", DataType::kInt64, SemanticType::kCategorical},
      {"fractional_shortening", DataType::kDouble,
       SemanticType::kContinuous},
      {"epss", DataType::kDouble, SemanticType::kContinuous},
      {"lvdd", DataType::kDouble, SemanticType::kContinuous},
      {"wall_motion_score", DataType::kDouble, SemanticType::kContinuous},
      {"wall_motion_index", DataType::kDouble, SemanticType::kContinuous},
      {"mult", DataType::kDouble, SemanticType::kContinuous},
      {"name", DataType::kString, SemanticType::kCategorical},
      {"group", DataType::kInt64, SemanticType::kCategorical},
      {"alive_at_1", DataType::kInt64, SemanticType::kCategorical},
  });

  Rng rng(seed);
  RelationBuilder builder(schema);
  for (size_t r = 0; r < kEchocardiogramRows; ++r) {
    // Base (independent) measurements.
    double survival = 0.25 * static_cast<double>(rng.UniformInt(0, 225));
    double age = RoundTo(rng.UniformDouble(35.0, 86.0), 0);
    int64_t effusion = rng.Bernoulli(0.25) ? 1 : 0;
    double fractional = RoundTo(rng.UniformDouble(0.01, 0.61), 3);
    double epss = RoundTo(rng.UniformDouble(0.0, 40.0), 1);
    double wms = 0.5 * static_cast<double>(rng.UniformInt(4, 78));  // 2..39
    double mult = RoundTo(rng.UniformDouble(0.14, 2.0), 2);

    // Planted dependencies (see header comment):
    //   epss -> lvdd            strict FD + order dependency
    //   wall_motion_score -> wall_motion_index   strict FD + OD (+ OFD
    //                            where the rounding keeps the map strict)
    //   survival -> alive_at_1  FD + OD onto a categorical attribute
    //   still_alive ->(<=2) group  numerical dependency: each still_alive
    //                            value draws group from a 2-value pool out
    //                            of 4 (and group -> still_alive is an FD)
    double lvdd = RoundTo(2.3 + epss * 0.11, 1);
    double wmi = RoundTo(1.0 + wms / 14.0, 2);
    int64_t alive_at_1 = survival >= 12.0 ? 1 : 0;
    int64_t still_alive = survival >= 24.0 ? 1 : 0;
    int64_t group = still_alive == 0 ? (rng.Bernoulli(0.5) ? 1 : 2)
                                     : (rng.Bernoulli(0.5) ? 3 : 4);

    Value v_survival = Value::Real(survival);
    Value v_still_alive = Value::Int(still_alive);
    Value v_age = Value::Real(age);
    Value v_effusion = Value::Int(effusion);
    Value v_fractional = Value::Real(fractional);
    Value v_epss = Value::Real(epss);
    Value v_lvdd = Value::Real(lvdd);
    Value v_wms = Value::Real(wms);
    Value v_wmi = Value::Real(wmi);
    Value v_mult = Value::Real(mult);
    Value v_group = Value::Int(group);
    Value v_alive = Value::Int(alive_at_1);

    // Missing values, mirroring the density of the UCI file. Nulls on an
    // FD's LHS are applied jointly with its RHS so two NULL-LHS rows never
    // disagree on the RHS (NULL is a distinct value in FD semantics).
    if (rng.Bernoulli(0.06)) v_fractional = Value::Null();
    if (rng.Bernoulli(0.05)) {
      v_epss = Value::Null();
      v_lvdd = Value::Null();
    }
    if (rng.Bernoulli(0.02)) {
      v_wms = Value::Null();
      v_wmi = Value::Null();
    }
    if (rng.Bernoulli(0.03)) v_mult = Value::Null();

    builder.AddRow({v_survival, v_still_alive, v_age, v_effusion,
                    v_fractional, v_epss, v_lvdd, v_wms, v_wmi, v_mult,
                    Value::Str("name"), v_group, v_alive});
  }
  Result<Relation> rel = builder.Finish();
  METALEAK_DCHECK(rel.ok());
  return std::move(rel).ValueUnsafe();
}

Result<Relation> LoadEchocardiogramFile(const std::string& path) {
  CsvLoadOptions options;
  options.has_header = false;
  options.null_markers = {"?", ""};
  METALEAK_ASSIGN_OR_RETURN(Relation raw,
                            LoadCsvRelationFile(path, options));
  if (raw.num_columns() != kEchocardiogramAttributes) {
    return Status::Invalid(
        "expected 13 attributes in the UCI echocardiogram file, got " +
        std::to_string(raw.num_columns()));
  }
  // Re-type per the paper's split: continuous 0,2,4,5,6,7,8,9;
  // categorical 1,3,10,11,12. Names follow the UCI documentation.
  static constexpr const char* kNames[] = {
      "survival",       "still_alive",
      "age_at_heart_attack", "pericardial_effusion",
      "fractional_shortening", "epss",
      "lvdd",           "wall_motion_score",
      "wall_motion_index", "mult",
      "name",           "group",
      "alive_at_1"};
  std::vector<Attribute> attrs;
  attrs.reserve(kEchocardiogramAttributes);
  for (size_t c = 0; c < kEchocardiogramAttributes; ++c) {
    Attribute a = raw.schema().attribute(c);
    a.name = kNames[c];
    bool continuous = c == 0 || c == 2 || (c >= 4 && c <= 9);
    a.semantic = continuous ? SemanticType::kContinuous
                            : SemanticType::kCategorical;
    attrs.push_back(std::move(a));
  }
  std::vector<std::vector<Value>> columns;
  columns.reserve(kEchocardiogramAttributes);
  for (size_t c = 0; c < kEchocardiogramAttributes; ++c) {
    columns.push_back(raw.column(c));
  }
  return Relation::Make(Schema(std::move(attrs)), std::move(columns));
}

}  // namespace datasets
}  // namespace metaleak
