#include "data/datasets/employee.h"

#include "common/macros.h"

namespace metaleak {
namespace datasets {

Relation Employee() {
  Schema schema({
      {"Name", DataType::kString, SemanticType::kCategorical},
      {"Age", DataType::kInt64, SemanticType::kContinuous},
      {"Department", DataType::kString, SemanticType::kCategorical},
      {"Salary", DataType::kInt64, SemanticType::kContinuous},
  });
  RelationBuilder builder(schema);
  builder
      .AddRow({Value::Str("Alice"), Value::Int(18), Value::Str("Sales"),
               Value::Int(20000)})
      .AddRow({Value::Str("Bob"), Value::Int(22),
               Value::Str("Customer Service"), Value::Int(25000)})
      .AddRow({Value::Str("Charlie"), Value::Int(22), Value::Str("Sales"),
               Value::Int(27000)})
      .AddRow({Value::Str("Danny"), Value::Int(26), Value::Str("Management"),
               Value::Int(35000)});
  Result<Relation> rel = builder.Finish();
  METALEAK_DCHECK(rel.ok());
  return std::move(rel).ValueUnsafe();
}

}  // namespace datasets
}  // namespace metaleak
