// Configurable synthetic relation generator with planted dependencies.
//
// Used by tests (known ground truth for discovery) and ablation benches
// (sweeps over row count, domain size, ND fan-out, ...).
#ifndef METALEAK_DATA_DATASETS_SYNTHETIC_H_
#define METALEAK_DATA_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace metaleak {
namespace datasets {

/// One synthetic attribute. Base attributes are drawn independently;
/// derived attributes are computed from a source attribute, which plants a
/// dependency of a known class.
struct SyntheticAttribute {
  enum class Kind {
    /// Categorical, uniform over `domain_size` string labels "v0".."vK-1".
    kCategoricalBase,
    /// Continuous, uniform over [lo, hi], rounded to `decimals`.
    kContinuousBase,
    /// y = f(source) via a fixed monotone step map: plants FD + OD
    /// (+ OFD when the map is injective on the observed values).
    kDerivedMonotone,
    /// y drawn from a per-source-value pool of `fanout` values:
    /// plants a numerical dependency source ->(<=fanout) y.
    kDerivedBoundedFanout,
    /// y = f(source) + uniform noise in [-noise, +noise]: plants an
    /// approximate FD whose g3 error grows with the noise rate
    /// `violation_rate` (fraction of rows re-drawn independently).
    kDerivedApproximate,
  };

  std::string name;
  Kind kind = Kind::kCategoricalBase;
  /// kCategoricalBase: label count. kDerived*: output label count for
  /// categorical outputs (0 = continuous output).
  size_t domain_size = 8;
  double lo = 0.0;
  double hi = 100.0;
  int decimals = 2;
  /// Derived kinds: index (into the attribute list) of the source.
  size_t source = 0;
  /// kDerivedBoundedFanout: maximum distinct y per source value.
  size_t fanout = 2;
  /// kDerivedApproximate: fraction of rows whose y is re-drawn uniformly,
  /// which upper-bounds the resulting g3 error.
  double violation_rate = 0.05;
};

struct SyntheticConfig {
  size_t num_rows = 1000;
  std::vector<SyntheticAttribute> attributes;
  uint64_t seed = 42;
};

/// Generates the relation. Fails on invalid configs (derived attribute
/// whose source index is not strictly smaller, empty domain, ...).
Result<Relation> Synthetic(const SyntheticConfig& config);

/// Convenience: a relation with `num_categorical` base categorical columns
/// (domain size `domain_size`) and `num_continuous` base continuous
/// columns over [0, 100], for scaling benches.
Result<Relation> SyntheticUniform(size_t num_rows, size_t num_categorical,
                                  size_t num_continuous, size_t domain_size,
                                  uint64_t seed);

/// Scale-bench generator: a wide schema whose categorical dictionaries
/// deliberately span the u8/u16/u32 code-width bands. Twelve categorical
/// columns draw Zipf-skewed integer labels (cumulative 1/k^s weights +
/// binary search on a uniform draw) over domains from a dozen values up
/// to a million, plus two uniform continuous columns. Labels are Int
/// values, so million-row generation never materializes strings. The
/// observed dictionary sizes — and therefore the stored code widths —
/// scale with `num_rows`: at a few hundred thousand rows the large
/// domains land in u16, by a million rows the largest cross into u32.
Result<Relation> SyntheticZipfScale(size_t num_rows, uint64_t seed);

/// The paper's dataset-selection control: a relation where only trivial
/// dependencies and "oversimplified mappings" are discoverable — an id
/// column (a key, so it trivially determines everything) plus independent
/// high-entropy columns with no order, fan-out or conditional structure.
/// Used by the control bench to show why echocardiogram-style datasets
/// are needed for the evaluation.
Result<Relation> TrivialControl(size_t num_rows, uint64_t seed);

}  // namespace datasets
}  // namespace metaleak

#endif  // METALEAK_DATA_DATASETS_SYNTHETIC_H_
