#include "data/datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"
#include "common/random.h"

namespace metaleak {
namespace datasets {

namespace {

double RoundTo(double x, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(x * scale) / scale;
}

std::string Label(size_t i) { return "v" + std::to_string(i); }

// Maps a source cell to a stable bucket index in [0, buckets) so derived
// attributes are deterministic functions of the source *value*.
size_t BucketOf(const Value& v, size_t buckets, double lo, double hi) {
  METALEAK_DCHECK(buckets > 0);
  if (v.is_numeric()) {
    double x = v.AsNumeric();
    if (hi <= lo) return 0;
    double t = (x - lo) / (hi - lo);
    t = std::clamp(t, 0.0, 1.0);
    size_t b = static_cast<size_t>(t * static_cast<double>(buckets));
    return std::min(b, buckets - 1);
  }
  return v.Hash() % buckets;
}

}  // namespace

Result<Relation> Synthetic(const SyntheticConfig& config) {
  if (config.attributes.empty()) {
    return Status::Invalid("synthetic config has no attributes");
  }
  Rng rng(config.seed);

  std::vector<Attribute> schema_attrs;
  std::vector<std::vector<Value>> columns(config.attributes.size());

  for (size_t a = 0; a < config.attributes.size(); ++a) {
    const SyntheticAttribute& spec = config.attributes[a];
    const bool derived = spec.kind != SyntheticAttribute::Kind::kCategoricalBase &&
                         spec.kind != SyntheticAttribute::Kind::kContinuousBase;
    if (derived && spec.source >= a) {
      return Status::Invalid("derived attribute '" + spec.name +
                             "' must reference an earlier source");
    }
    if (spec.kind == SyntheticAttribute::Kind::kCategoricalBase &&
        spec.domain_size == 0) {
      return Status::Invalid("attribute '" + spec.name +
                             "' has empty domain");
    }

    Attribute attr;
    attr.name = spec.name;
    const bool categorical_output =
        spec.kind == SyntheticAttribute::Kind::kCategoricalBase ||
        (derived && spec.domain_size > 0);
    attr.type = categorical_output ? DataType::kString : DataType::kDouble;
    attr.semantic = categorical_output ? SemanticType::kCategorical
                                       : SemanticType::kContinuous;
    schema_attrs.push_back(attr);

    std::vector<Value>& col = columns[a];
    col.reserve(config.num_rows);

    switch (spec.kind) {
      case SyntheticAttribute::Kind::kCategoricalBase: {
        for (size_t r = 0; r < config.num_rows; ++r) {
          col.push_back(Value::Str(Label(rng.UniformIndex(spec.domain_size))));
        }
        break;
      }
      case SyntheticAttribute::Kind::kContinuousBase: {
        for (size_t r = 0; r < config.num_rows; ++r) {
          col.push_back(Value::Real(
              RoundTo(rng.UniformDouble(spec.lo, spec.hi), spec.decimals)));
        }
        break;
      }
      case SyntheticAttribute::Kind::kDerivedMonotone: {
        const SyntheticAttribute& src_spec = config.attributes[spec.source];
        const std::vector<Value>& src = columns[spec.source];
        for (size_t r = 0; r < config.num_rows; ++r) {
          if (categorical_output) {
            size_t b = BucketOf(src[r], spec.domain_size, src_spec.lo,
                                src_spec.hi);
            col.push_back(Value::Str(Label(b)));
          } else {
            // Affine map of the source keeps the order and the function.
            double x = src[r].is_numeric()
                           ? src[r].AsNumeric()
                           : static_cast<double>(BucketOf(
                                 src[r], 1024, src_spec.lo, src_spec.hi));
            col.push_back(Value::Real(
                RoundTo(spec.lo + 0.37 * x, spec.decimals)));
          }
        }
        break;
      }
      case SyntheticAttribute::Kind::kDerivedBoundedFanout: {
        const std::vector<Value>& src = columns[spec.source];
        // Per source value, a fixed pool of `fanout` outputs.
        std::unordered_map<Value, std::vector<Value>> pools;
        for (size_t r = 0; r < config.num_rows; ++r) {
          std::vector<Value>& pool = pools[src[r]];
          if (pool.empty()) {
            for (size_t k = 0; k < std::max<size_t>(1, spec.fanout); ++k) {
              if (categorical_output) {
                pool.push_back(
                    Value::Str(Label(rng.UniformIndex(spec.domain_size))));
              } else {
                pool.push_back(Value::Real(RoundTo(
                    rng.UniformDouble(spec.lo, spec.hi), spec.decimals)));
              }
            }
          }
          col.push_back(pool[rng.UniformIndex(pool.size())]);
        }
        break;
      }
      case SyntheticAttribute::Kind::kDerivedApproximate: {
        const SyntheticAttribute& src_spec = config.attributes[spec.source];
        const std::vector<Value>& src = columns[spec.source];
        for (size_t r = 0; r < config.num_rows; ++r) {
          bool violate = rng.Bernoulli(spec.violation_rate);
          if (categorical_output) {
            size_t b = violate ? rng.UniformIndex(spec.domain_size)
                               : BucketOf(src[r], spec.domain_size,
                                          src_spec.lo, src_spec.hi);
            col.push_back(Value::Str(Label(b)));
          } else {
            double x = src[r].is_numeric() ? src[r].AsNumeric() : 0.0;
            double y = violate ? rng.UniformDouble(spec.lo, spec.hi)
                               : spec.lo + 0.37 * x;
            col.push_back(Value::Real(RoundTo(y, spec.decimals)));
          }
        }
        break;
      }
    }
  }

  return Relation::Make(Schema(std::move(schema_attrs)), std::move(columns));
}

namespace {

// Zipf(s) sampler over {0..K-1}: cumulative 1/(k+1)^s weights computed
// once, then each draw binary-searches a uniform deviate. O(log K) per
// sample, deterministic given the Rng stream.
class ZipfSampler {
 public:
  ZipfSampler(size_t domain, double skew) : cum_(domain) {
    METALEAK_DCHECK(domain > 0);
    double total = 0.0;
    for (size_t k = 0; k < domain; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), skew);
      cum_[k] = total;
    }
  }

  size_t Sample(Rng* rng) const {
    const double u = rng->UniformDouble(0.0, cum_.back());
    const size_t idx = static_cast<size_t>(
        std::upper_bound(cum_.begin(), cum_.end(), u) - cum_.begin());
    return std::min(idx, cum_.size() - 1);
  }

 private:
  std::vector<double> cum_;
};

}  // namespace

Result<Relation> SyntheticZipfScale(size_t num_rows, uint64_t seed) {
  // Domains and skews chosen so the observed dictionaries spread across
  // the three code-width bands: heavy skew keeps the small domains
  // saturated, light skew lets the large domains accumulate distinct
  // values roughly in proportion to the row count. The mix leans on the
  // u8/u16 bands (5+5 columns) with two u32 columns: a u32 column moves
  // the same bytes on both axes of the narrow-vs-forced comparison, so
  // it can only dilute the measurable bandwidth effect, while real
  // wide-schema tables skew exactly this way (most columns are
  // low-cardinality enums and bounded counters, a couple are IDs).
  struct CatSpec {
    const char* name;
    size_t domain;
    double skew;
  };
  static constexpr CatSpec kCats[] = {
      {"c8_a", 12, 1.1},      {"c8_b", 64, 1.0},
      {"c8_c", 120, 0.9},     {"c8_d", 160, 0.8},
      {"c8_e", 250, 0.6},
      {"c16_a", 1000, 0.9},   {"c16_b", 4000, 0.7},
      {"c16_c", 9000, 0.6},   {"c16_d", 20000, 0.5},
      {"c16_e", 60000, 0.4},
      {"c32_a", 200000, 0.2}, {"c32_b", 1000000, 0.1},
  };
  Rng rng(seed);
  std::vector<Attribute> schema_attrs;
  std::vector<std::vector<Value>> columns;
  for (const CatSpec& spec : kCats) {
    schema_attrs.push_back(
        {spec.name, DataType::kInt64, SemanticType::kCategorical});
    ZipfSampler sampler(spec.domain, spec.skew);
    std::vector<Value> col;
    col.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      col.push_back(Value::Int(static_cast<int64_t>(sampler.Sample(&rng))));
    }
    columns.push_back(std::move(col));
  }
  for (const char* name : {"num_a", "num_b"}) {
    schema_attrs.push_back({name, DataType::kDouble,
                            SemanticType::kContinuous});
    std::vector<Value> col;
    col.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      col.push_back(Value::Real(rng.UniformDouble(0.0, 1000.0)));
    }
    columns.push_back(std::move(col));
  }
  return Relation::Make(Schema(std::move(schema_attrs)), std::move(columns));
}

Result<Relation> TrivialControl(size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  Schema schema({
      {"id", DataType::kInt64, SemanticType::kCategorical},
      {"noise_a", DataType::kDouble, SemanticType::kContinuous},
      {"noise_b", DataType::kDouble, SemanticType::kContinuous},
      {"label", DataType::kString, SemanticType::kCategorical},
  });
  std::vector<std::vector<Value>> columns(4);
  for (size_t r = 0; r < num_rows; ++r) {
    columns[0].push_back(Value::Int(static_cast<int64_t>(r)));
    // Continuous columns with enough precision that ties — and thus
    // non-trivial partitions — essentially never happen.
    columns[1].push_back(Value::Real(rng.UniformDouble(0.0, 1e6)));
    columns[2].push_back(Value::Real(rng.UniformDouble(-1e6, 0.0)));
    columns[3].push_back(
        Value::Str("c" + std::to_string(rng.UniformIndex(50))));
  }
  return Relation::Make(std::move(schema), std::move(columns));
}

Result<Relation> SyntheticUniform(size_t num_rows, size_t num_categorical,
                                  size_t num_continuous, size_t domain_size,
                                  uint64_t seed) {
  SyntheticConfig config;
  config.num_rows = num_rows;
  config.seed = seed;
  for (size_t i = 0; i < num_categorical; ++i) {
    SyntheticAttribute a;
    a.name = "cat" + std::to_string(i);
    a.kind = SyntheticAttribute::Kind::kCategoricalBase;
    a.domain_size = domain_size;
    config.attributes.push_back(a);
  }
  for (size_t i = 0; i < num_continuous; ++i) {
    SyntheticAttribute a;
    a.name = "num" + std::to_string(i);
    a.kind = SyntheticAttribute::Kind::kContinuousBase;
    a.lo = 0.0;
    a.hi = 100.0;
    config.attributes.push_back(a);
  }
  return Synthetic(config);
}

}  // namespace datasets
}  // namespace metaleak
