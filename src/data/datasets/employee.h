// The paper's running example (Table II): a four-row employee relation.
#ifndef METALEAK_DATA_DATASETS_EMPLOYEE_H_
#define METALEAK_DATA_DATASETS_EMPLOYEE_H_

#include "data/relation.h"

namespace metaleak {
namespace datasets {

/// Returns Table II of the paper:
///
///   Name    | Age | Department       | Salary
///   Alice   | 18  | Sales            | 20000
///   Bob     | 22  | Customer Service | 25000
///   Charlie | 22  | Sales            | 27000
///   Danny   | 26  | Management       | 35000
///
/// Name and Department are categorical; Age and Salary are continuous.
/// The FDs Name -> Age and Name -> Salary hold (Name is a key).
Relation Employee();

}  // namespace datasets
}  // namespace metaleak

#endif  // METALEAK_DATA_DATASETS_EMPLOYEE_H_
