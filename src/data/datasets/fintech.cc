#include "data/datasets/fintech.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"

namespace metaleak {
namespace datasets {

namespace {

double RoundTo(double x, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(x * scale) / scale;
}

const char* CreditBand(double income) {
  if (income < 25000) return "D";
  if (income < 45000) return "C";
  if (income < 75000) return "B";
  return "A";
}

const char* FavoriteCategory(Rng* rng) {
  static constexpr const char* kCategories[] = {
      "electronics", "fashion", "groceries", "home", "sports"};
  return kCategories[rng->UniformIndex(5)];
}

const char* DataPlan(double minutes) {
  if (minutes < 30) return "prepaid";
  if (minutes < 120) return "basic";
  if (minutes < 300) return "plus";
  return "unlimited";
}

const char* PremiumBand(double premium) {
  if (premium < 250) return "low";
  if (premium < 500) return "mid";
  return "high";
}

}  // namespace

FintechScenario Fintech(const FintechOptions& options) {
  Rng rng(options.seed);

  Schema bank_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"income", DataType::kDouble, SemanticType::kContinuous},
      {"account_balance", DataType::kDouble, SemanticType::kContinuous},
      {"credit_band", DataType::kString, SemanticType::kCategorical},
      {"years_as_customer", DataType::kInt64, SemanticType::kContinuous},
      {"loan_default", DataType::kInt64, SemanticType::kCategorical},
  });
  Schema ecom_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"orders_per_year", DataType::kInt64, SemanticType::kContinuous},
      {"total_spend", DataType::kDouble, SemanticType::kContinuous},
      {"favorite_category", DataType::kString, SemanticType::kCategorical},
      {"returns_rate", DataType::kDouble, SemanticType::kContinuous},
  });

  RelationBuilder bank_builder(bank_schema);
  RelationBuilder ecom_builder(ecom_schema);

  for (size_t id = 0; id < options.population; ++id) {
    // Latent per-customer state shared by both views.
    double income = RoundTo(rng.UniformDouble(12000, 150000), 0);
    double balance = RoundTo(rng.UniformDouble(-2000, 90000), 0);
    int64_t years = rng.UniformInt(0, 30);
    int64_t orders = rng.UniformInt(0, 80);
    // total_spend is a deterministic monotone function of orders: FD + OD.
    double spend = RoundTo(35.0 * static_cast<double>(orders) + 12.0, 0);
    double returns_rate = RoundTo(rng.UniformDouble(0.0, 0.4), 2);

    // Default risk falls with income/balance, rises with spend.
    double risk = 0.9 - income / 200000.0 - balance / 300000.0 +
                  spend / 12000.0;
    int64_t label = rng.Bernoulli(std::clamp(risk, 0.02, 0.95)) ? 1 : 0;

    bool bank_sees = rng.Bernoulli(options.bank_coverage);
    bool ecom_sees = rng.Bernoulli(options.ecommerce_coverage);
    if (bank_sees) {
      bank_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                           Value::Real(income), Value::Real(balance),
                           Value::Str(CreditBand(income)), Value::Int(years),
                           Value::Int(label)});
    }
    if (ecom_sees) {
      ecom_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                           Value::Int(orders), Value::Real(spend),
                           Value::Str(FavoriteCategory(&rng)),
                           Value::Real(returns_rate)});
    }
  }

  Result<Relation> bank = bank_builder.Finish();
  Result<Relation> ecom = ecom_builder.Finish();
  METALEAK_DCHECK(bank.ok() && ecom.ok());
  return FintechScenario{std::move(bank).ValueUnsafe(),
                         std::move(ecom).ValueUnsafe()};
}

FintechFederationScenario FintechFederation(
    const FintechFederationOptions& options) {
  Rng rng(options.seed);

  Schema bank_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"income", DataType::kDouble, SemanticType::kContinuous},
      {"account_balance", DataType::kDouble, SemanticType::kContinuous},
      {"credit_band", DataType::kString, SemanticType::kCategorical},
      {"years_as_customer", DataType::kInt64, SemanticType::kContinuous},
      {"loan_default", DataType::kInt64, SemanticType::kCategorical},
  });
  Schema ecom_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"orders_per_year", DataType::kInt64, SemanticType::kContinuous},
      {"total_spend", DataType::kDouble, SemanticType::kContinuous},
      {"favorite_category", DataType::kString, SemanticType::kCategorical},
      {"returns_rate", DataType::kDouble, SemanticType::kContinuous},
  });
  Schema telco_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"avg_daily_minutes", DataType::kDouble, SemanticType::kContinuous},
      {"data_plan", DataType::kString, SemanticType::kCategorical},
      {"roaming_spend", DataType::kDouble, SemanticType::kContinuous},
  });
  Schema insurer_schema({
      {"customer_id", DataType::kInt64, SemanticType::kCategorical},
      {"num_policies", DataType::kInt64, SemanticType::kContinuous},
      {"annual_premium", DataType::kDouble, SemanticType::kContinuous},
      {"premium_band", DataType::kString, SemanticType::kCategorical},
      {"claims_rate", DataType::kDouble, SemanticType::kContinuous},
  });

  RelationBuilder bank_builder(bank_schema);
  RelationBuilder ecom_builder(ecom_schema);
  RelationBuilder telco_builder(telco_schema);
  RelationBuilder insurer_builder(insurer_schema);

  for (size_t id = 0; id < options.population; ++id) {
    // Latent per-customer state shared by all four views.
    double income = RoundTo(rng.UniformDouble(12000, 150000), 0);
    double balance = RoundTo(rng.UniformDouble(-2000, 90000), 0);
    int64_t years = rng.UniformInt(0, 30);
    int64_t orders = rng.UniformInt(0, 80);
    // total_spend is a deterministic monotone function of orders: FD + OD.
    double spend = RoundTo(35.0 * static_cast<double>(orders) + 12.0, 0);
    double returns_rate = RoundTo(rng.UniformDouble(0.0, 0.4), 2);
    double minutes = RoundTo(rng.UniformDouble(0.0, 420.0), 1);
    double roaming = RoundTo(rng.UniformDouble(0.0, 60.0), 2);
    int64_t policies = rng.UniformInt(1, 6);
    // annual_premium is linear in num_policies: FD + OD, and premium_band
    // bands it: a second FD + OD in a chain.
    double premium = RoundTo(120.0 * static_cast<double>(policies) + 80.0, 0);
    double claims_rate = RoundTo(rng.UniformDouble(0.0, 0.5), 2);

    // Every vertical contributes to default risk so each slice carries
    // signal the joint model can pick up.
    double risk = 0.9 - income / 200000.0 - balance / 300000.0 +
                  spend / 12000.0 + minutes / 4000.0 -
                  static_cast<double>(policies) / 40.0;
    int64_t label = rng.Bernoulli(std::clamp(risk, 0.02, 0.95)) ? 1 : 0;

    bool bank_sees = rng.Bernoulli(options.bank_coverage);
    bool ecom_sees = rng.Bernoulli(options.ecommerce_coverage);
    bool telco_sees = rng.Bernoulli(options.telco_coverage);
    bool insurer_sees = rng.Bernoulli(options.insurer_coverage);
    if (bank_sees) {
      bank_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                           Value::Real(income), Value::Real(balance),
                           Value::Str(CreditBand(income)), Value::Int(years),
                           Value::Int(label)});
    }
    if (ecom_sees) {
      ecom_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                           Value::Int(orders), Value::Real(spend),
                           Value::Str(FavoriteCategory(&rng)),
                           Value::Real(returns_rate)});
    }
    if (telco_sees) {
      telco_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                            Value::Real(minutes), Value::Str(DataPlan(minutes)),
                            Value::Real(roaming)});
    }
    if (insurer_sees) {
      insurer_builder.AddRow({Value::Int(static_cast<int64_t>(id)),
                              Value::Int(policies), Value::Real(premium),
                              Value::Str(PremiumBand(premium)),
                              Value::Real(claims_rate)});
    }
  }

  Result<Relation> bank = bank_builder.Finish();
  Result<Relation> ecom = ecom_builder.Finish();
  Result<Relation> telco = telco_builder.Finish();
  Result<Relation> insurer = insurer_builder.Finish();
  METALEAK_DCHECK(bank.ok() && ecom.ok() && telco.ok() && insurer.ok());
  return FintechFederationScenario{
      std::move(bank).ValueUnsafe(), std::move(ecom).ValueUnsafe(),
      std::move(telco).ValueUnsafe(), std::move(insurer).ValueUnsafe()};
}

}  // namespace datasets
}  // namespace metaleak
