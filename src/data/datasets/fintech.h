// The paper's Figure 1 scenario: a bank and an e-commerce company that
// observe a common customer population and want to train a loan-default
// model with vertical federated learning.
#ifndef METALEAK_DATA_DATASETS_FINTECH_H_
#define METALEAK_DATA_DATASETS_FINTECH_H_

#include <cstdint>

#include "data/relation.h"

namespace metaleak {
namespace datasets {

/// A two-party VFL scenario. `customer_id` is the join key each party
/// holds; the bank additionally holds the training label.
struct FintechScenario {
  /// Bank (party A): customer_id, income, account_balance, credit_band,
  /// years_as_customer, loan_default (label).
  Relation bank;
  /// E-commerce company (party B): customer_id, orders_per_year,
  /// total_spend, favorite_category, returns_rate.
  Relation ecommerce;
};

struct FintechOptions {
  /// Size of the underlying shared population.
  size_t population = 600;
  /// Fraction of the population each party observes (overlap is the
  /// product in expectation, which is what PSI recovers).
  double bank_coverage = 0.85;
  double ecommerce_coverage = 0.80;
  uint64_t seed = 7;
};

/// Generates the scenario. Deterministic per options.
///
/// Planted structure: credit_band is a banded function of income (FD + OD
/// income -> credit_band); total_spend is monotone in orders_per_year
/// (FD + OD); loan_default depends on income, balance and spend so the VFL
/// model has signal to learn.
FintechScenario Fintech(const FintechOptions& options = {});

}  // namespace datasets
}  // namespace metaleak

#endif  // METALEAK_DATA_DATASETS_FINTECH_H_
