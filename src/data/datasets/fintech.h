// The paper's Figure 1 scenario: a bank and an e-commerce company that
// observe a common customer population and want to train a loan-default
// model with vertical federated learning.
#ifndef METALEAK_DATA_DATASETS_FINTECH_H_
#define METALEAK_DATA_DATASETS_FINTECH_H_

#include <cstdint>

#include "data/relation.h"

namespace metaleak {
namespace datasets {

/// A two-party VFL scenario. `customer_id` is the join key each party
/// holds; the bank additionally holds the training label.
struct FintechScenario {
  /// Bank (party A): customer_id, income, account_balance, credit_band,
  /// years_as_customer, loan_default (label).
  Relation bank;
  /// E-commerce company (party B): customer_id, orders_per_year,
  /// total_spend, favorite_category, returns_rate.
  Relation ecommerce;
};

struct FintechOptions {
  /// Size of the underlying shared population.
  size_t population = 600;
  /// Fraction of the population each party observes (overlap is the
  /// product in expectation, which is what PSI recovers).
  double bank_coverage = 0.85;
  double ecommerce_coverage = 0.80;
  uint64_t seed = 7;
};

/// Generates the scenario. Deterministic per options.
///
/// Planted structure: credit_band is a banded function of income (FD + OD
/// income -> credit_band); total_spend is monotone in orders_per_year
/// (FD + OD); loan_default depends on income, balance and spend so the VFL
/// model has signal to learn.
FintechScenario Fintech(const FintechOptions& options = {});

/// The N-party extension of the Figure 1 scenario: the same customer
/// population observed by four verticals, so coalition sizes 1-3 always
/// have a victim slice to attack.
struct FintechFederationScenario {
  /// Bank (label holder): same schema as FintechScenario::bank.
  Relation bank;
  /// E-commerce: same schema as FintechScenario::ecommerce.
  Relation ecommerce;
  /// Telco: customer_id, avg_daily_minutes, data_plan, roaming_spend.
  /// data_plan is a banded function of avg_daily_minutes (FD + OD).
  Relation telco;
  /// Insurer: customer_id, num_policies, annual_premium, premium_band,
  /// claims_rate. annual_premium is linear in num_policies (FD + OD) and
  /// premium_band is banded from annual_premium (FD + OD chain).
  Relation insurer;
};

struct FintechFederationOptions {
  size_t population = 600;
  double bank_coverage = 0.85;
  double ecommerce_coverage = 0.80;
  double telco_coverage = 0.80;
  double insurer_coverage = 0.75;
  uint64_t seed = 7;
};

/// Generates the four-party scenario. Deterministic per options and
/// population-scalable (the benchmark drives it at 10k-50k rows). The
/// label depends on latents from every vertical, so each party's slice
/// carries real signal for the joint model.
FintechFederationScenario FintechFederation(
    const FintechFederationOptions& options = {});

}  // namespace datasets
}  // namespace metaleak

#endif  // METALEAK_DATA_DATASETS_FINTECH_H_
