#include "data/domain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace metaleak {

Domain Domain::Categorical(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Domain d;
  d.categorical_ = true;
  d.values_ = std::move(values);
  return d;
}

Domain Domain::Continuous(double lo, double hi) {
  METALEAK_DCHECK(lo <= hi);
  Domain d;
  d.categorical_ = false;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

double Domain::Size() const {
  return categorical_ ? static_cast<double>(values_.size()) : range();
}

Value Domain::Sample(Rng* rng) const {
  METALEAK_DCHECK(rng != nullptr);
  if (categorical_) {
    METALEAK_DCHECK(!values_.empty());
    return values_[rng->UniformIndex(values_.size())];
  }
  return Value::Real(rng->UniformDouble(lo_, hi_));
}

bool Domain::Contains(const Value& v) const {
  if (categorical_) {
    return std::binary_search(values_.begin(), values_.end(), v,
                              [](const Value& a, const Value& b) {
                                return a < b;
                              });
  }
  if (!v.is_numeric()) return false;
  double x = v.AsNumeric();
  return x >= lo_ && x <= hi_;
}

std::string Domain::ToString() const {
  std::ostringstream os;
  if (categorical_) {
    os << '{';
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) os << ", ";
      os << values_[i].ToString();
    }
    os << '}';
  } else {
    os << '[' << lo_ << ", " << hi_ << ']';
  }
  return os.str();
}

bool operator==(const Domain& a, const Domain& b) {
  if (a.categorical_ != b.categorical_) return false;
  if (a.categorical_) return a.values_ == b.values_;
  return a.lo_ == b.lo_ && a.hi_ == b.hi_;
}

Result<Domain> ExtractDomain(const Relation& relation, size_t attribute) {
  if (attribute >= relation.num_columns()) {
    return Status::OutOfRange("attribute index " + std::to_string(attribute) +
                              " out of range");
  }
  const Attribute& attr = relation.schema().attribute(attribute);
  const std::vector<Value>& col = relation.column(attribute);
  if (attr.semantic == SemanticType::kCategorical) {
    std::vector<Value> values;
    for (const Value& v : col) {
      if (!v.is_null()) values.push_back(v);
    }
    if (values.empty()) {
      return Status::Invalid("attribute '" + attr.name +
                             "' has no non-null values");
    }
    return Domain::Categorical(std::move(values));
  }
  bool seen = false;
  double lo = 0.0;
  double hi = 0.0;
  for (const Value& v : col) {
    if (v.is_null() || !v.is_numeric()) continue;
    double x = v.AsNumeric();
    if (!seen) {
      lo = hi = x;
      seen = true;
    } else {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (!seen) {
    return Status::Invalid("continuous attribute '" + attr.name +
                           "' has no numeric values");
  }
  return Domain::Continuous(lo, hi);
}

Result<std::vector<Domain>> ExtractDomains(const Relation& relation) {
  std::vector<Domain> out;
  out.reserve(relation.num_columns());
  for (size_t i = 0; i < relation.num_columns(); ++i) {
    METALEAK_ASSIGN_OR_RETURN(Domain d, ExtractDomain(relation, i));
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace metaleak
