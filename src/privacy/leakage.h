// Privacy-leakage metrics: Definitions 2.2 and 2.3 of the paper.
//
// Leakage is evaluated *index-aligned*: tuple i of the synthetic relation
// is compared against tuple i of the real relation, because in VFL the
// tuple identities are fixed by the private-set-intersection alignment
// (Section II-B). Categorical attributes leak on exact value match;
// continuous attributes leak when the synthetic value lands within an
// epsilon ball of the real value; MSE is reported as the paper's
// aggregate error indicator for continuous attributes.
#ifndef METALEAK_PRIVACY_LEAKAGE_H_
#define METALEAK_PRIVACY_LEAKAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "data/schema.h"

namespace metaleak {

/// Per-attribute leakage measurement.
struct AttributeLeakage {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// Rows compared (real NULLs are skipped — an undisclosed value cannot
  /// be leaked).
  size_t rows_compared = 0;
  /// Def 2.2 / 2.3 match count (exact for categorical, epsilon-ball for
  /// continuous).
  size_t matches = 0;
  /// matches / rows_compared (0 when nothing compared).
  double match_rate = 0.0;
  /// Mean squared error over compared rows; only set for continuous
  /// attributes.
  std::optional<double> mse;
};

struct LeakageOptions {
  /// Epsilon for Def 2.3, as a fraction of the attribute's observed real
  /// range (used when `absolute_epsilon` is unset).
  double epsilon_fraction = 0.01;
  /// Absolute epsilon overriding the fractional policy.
  std::optional<double> absolute_epsilon;
};

struct LeakageReport {
  std::vector<AttributeLeakage> attributes;

  /// Total matches across categorical attributes.
  size_t TotalCategoricalMatches() const;
  /// The entry for `attribute`; OutOfRange if missing.
  Result<AttributeLeakage> ForAttribute(size_t attribute) const;
};

/// Counts Def-2.2 matches for one categorical attribute.
Result<size_t> CountCategoricalMatches(const Relation& real,
                                       const Relation& synthetic,
                                       size_t attribute);

/// Counts Def-2.3 matches for one continuous attribute with threshold
/// `epsilon` under the absolute-difference metric d(x, y) = |x - y|.
Result<size_t> CountContinuousMatches(const Relation& real,
                                      const Relation& synthetic,
                                      size_t attribute, double epsilon);

/// MSE of one continuous attribute over rows where the real value is
/// non-null.
Result<double> AttributeMse(const Relation& real, const Relation& synthetic,
                            size_t attribute);

/// Full per-attribute evaluation. The relations must have identical arity
/// and row counts (index alignment); attribute names must agree.
Result<LeakageReport> EvaluateLeakage(const Relation& real,
                                      const Relation& synthetic,
                                      const LeakageOptions& options = {});

/// One Monte-Carlo round's raw numbers for one attribute: everything the
/// experiment runner needs to accumulate, without a LeakageReport's
/// strings. Both the value path and the code path reduce a round to this
/// struct, so the runner's Welford fold is shared and bit-identical.
struct AttributeRoundStats {
  size_t matches = 0;
  double mse = 0.0;
  bool has_mse = false;  // set for continuous attributes
};

/// Static per-attribute identity shared by every report assembler: who
/// the attribute is and how many rows Def 2.2/2.3 can compare (real
/// NULLs excluded). Both the value path and the code path reduce a
/// round to (meta, AttributeRoundStats) pairs and hand them to
/// AssembleLeakageReport, so exactly one place turns raw accumulator
/// columns into a LeakageReport.
struct LeakageAttributeMeta {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  size_t rows_compared = 0;
};

/// The single assembly point from raw round statistics to a
/// LeakageReport. `stats` must hold meta.size() entries.
LeakageReport AssembleLeakageReport(
    const std::vector<LeakageAttributeMeta>& meta,
    const AttributeRoundStats* stats);

/// Code-path leakage evaluator: everything about R_real that Def 2.2/2.3
/// need, resolved once against a *generation-domain* batch layout so each
/// round is a branch-free scan over dense codes and doubles.
///
///   * Categorical attributes over code-stored columns compare the
///     synthetic code against a per-row translation of the real cell into
///     generation-domain codes (real cells matching no domain value get a
///     sentinel that never equals a synthetic code — including the NULL
///     code 0, so a synthetic NULL is never a match). The translation is
///     stored at the same narrow width the batch column uses (the
///     width-selection rule keeps the all-ones sentinel free at every
///     width), so the compare kernel streams narrow on both sides.
///   * Continuous attributes compare raw doubles under the epsilon ball
///     and accumulate the MSE in row order, skipping exactly the rows the
///     value path skips (real/synthetic NULL or non-numeric).
///
/// Evaluate() walks the rows in L2-sized tiles, carrying the per-
/// attribute statistics across tiles; tile boundaries are multiples of
/// the kernels' 4-row lane grouping, so the tiled scan is bit-identical
/// to one full-length pass.
///
/// Build() fails with the Status EvaluateLeakage would produce for a
/// structural mismatch (arity, attribute names). Value patterns the code
/// path cannot reproduce bit-for-bit (a real value matching several
/// domain entries cross-type, NaNs feeding the MSE) clear supported()
/// instead, and callers fall back to the value path.
class EncodedLeakageContext {
 public:
  /// Sentinel for real cells with no generation-domain code (NULLs and
  /// out-of-domain values); never equals any synthetic code. Stored
  /// per-width as the all-ones value (CodeWidthSentinel), which the
  /// width-selection rule keeps out of every code domain.
  static constexpr uint32_t kNoMatchCode = 0xFFFFFFFFu;

  /// `real` is the encoded real relation, `syn_schema` the schema the
  /// generator emits (names must match), `domains` the generation
  /// domains the batch is coded against.
  static Result<EncodedLeakageContext> Build(
      const EncodedRelation& real, const Schema& syn_schema,
      const std::vector<Domain>& domains,
      const LeakageOptions& options = {});

  bool supported() const { return supported_; }
  const std::string& fallback_reason() const { return fallback_reason_; }
  size_t num_attributes() const { return attrs_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Scores one generated batch into `stats` (an array of
  /// num_attributes() entries). Thread-safe: the context is read-only.
  Status Evaluate(const EncodedBatch& batch,
                  AttributeRoundStats* stats) const;

  /// Convenience wrapper producing a full LeakageReport (adapter
  /// boundary for Relation-level callers like the VFL attack).
  Result<LeakageReport> EvaluateReport(const EncodedBatch& batch) const;

  /// The per-attribute identity rows this context resolved at Build
  /// time, in attribute order — the `meta` argument for
  /// AssembleLeakageReport and for risk estimators that label their
  /// measure columns.
  std::vector<LeakageAttributeMeta> AttributeMetas() const;

  /// Dense read-only view of one attribute's resolved tables, for
  /// per-cell consumers (tuple risk) that score rows rather than whole
  /// attributes. Pointers stay valid while the context lives; only the
  /// tables the attribute's comparison actually reads are non-null.
  struct AttributeView {
    SemanticType semantic = SemanticType::kCategorical;
    EncodedBatch::ColumnKind kind = EncodedBatch::ColumnKind::kCodes;
    double epsilon = 0.0;
    CodeColumnView real_codes;             // categorical x codes, per row
    const double* real_numeric = nullptr;  // per row, NaN = skip
    const double* code_numeric = nullptr;  // synthetic code -> numeric
  };
  AttributeView ViewAttribute(size_t attribute) const;

 private:
  struct AttrPlan {
    std::string name;
    SemanticType semantic = SemanticType::kCategorical;
    EncodedBatch::ColumnKind kind = EncodedBatch::ColumnKind::kCodes;
    double epsilon = 0.0;
    size_t rows_compared = 0;
    CodeColumn real_codes;  // categorical x codes, per row, batch width
    std::vector<double> real_numeric;   // per row, NaN = skip
    std::vector<double> code_numeric;   // synthetic code -> numeric, NaN
  };

  std::vector<AttrPlan> attrs_;
  size_t num_rows_ = 0;
  bool supported_ = true;
  std::string fallback_reason_;
};

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_LEAKAGE_H_
