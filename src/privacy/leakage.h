// Privacy-leakage metrics: Definitions 2.2 and 2.3 of the paper.
//
// Leakage is evaluated *index-aligned*: tuple i of the synthetic relation
// is compared against tuple i of the real relation, because in VFL the
// tuple identities are fixed by the private-set-intersection alignment
// (Section II-B). Categorical attributes leak on exact value match;
// continuous attributes leak when the synthetic value lands within an
// epsilon ball of the real value; MSE is reported as the paper's
// aggregate error indicator for continuous attributes.
#ifndef METALEAK_PRIVACY_LEAKAGE_H_
#define METALEAK_PRIVACY_LEAKAGE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"

namespace metaleak {

/// Per-attribute leakage measurement.
struct AttributeLeakage {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// Rows compared (real NULLs are skipped — an undisclosed value cannot
  /// be leaked).
  size_t rows_compared = 0;
  /// Def 2.2 / 2.3 match count (exact for categorical, epsilon-ball for
  /// continuous).
  size_t matches = 0;
  /// matches / rows_compared (0 when nothing compared).
  double match_rate = 0.0;
  /// Mean squared error over compared rows; only set for continuous
  /// attributes.
  std::optional<double> mse;
};

struct LeakageOptions {
  /// Epsilon for Def 2.3, as a fraction of the attribute's observed real
  /// range (used when `absolute_epsilon` is unset).
  double epsilon_fraction = 0.01;
  /// Absolute epsilon overriding the fractional policy.
  std::optional<double> absolute_epsilon;
};

struct LeakageReport {
  std::vector<AttributeLeakage> attributes;

  /// Total matches across categorical attributes.
  size_t TotalCategoricalMatches() const;
  /// The entry for `attribute`; OutOfRange if missing.
  Result<AttributeLeakage> ForAttribute(size_t attribute) const;
};

/// Counts Def-2.2 matches for one categorical attribute.
Result<size_t> CountCategoricalMatches(const Relation& real,
                                       const Relation& synthetic,
                                       size_t attribute);

/// Counts Def-2.3 matches for one continuous attribute with threshold
/// `epsilon` under the absolute-difference metric d(x, y) = |x - y|.
Result<size_t> CountContinuousMatches(const Relation& real,
                                      const Relation& synthetic,
                                      size_t attribute, double epsilon);

/// MSE of one continuous attribute over rows where the real value is
/// non-null.
Result<double> AttributeMse(const Relation& real, const Relation& synthetic,
                            size_t attribute);

/// Full per-attribute evaluation. The relations must have identical arity
/// and row counts (index alignment); attribute names must agree.
Result<LeakageReport> EvaluateLeakage(const Relation& real,
                                      const Relation& synthetic,
                                      const LeakageOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_LEAKAGE_H_
