// k-anonymity checking and generalization-based anonymization.
//
// Section II-B of the paper: "anonymization techniques aim to ensure
// that shared data remain non-identifiable". This module provides the
// checker (is every tuple hidden in a group of >= k under the
// quasi-identifier?) and a simple generalize-then-suppress anonymizer:
// continuous attributes are binned to interval labels of increasing
// width, rare categorical values are suppressed to "*", and rows whose
// group stays below k after maximal generalization are suppressed.
// The A7 ablation traces leakage and utility across k.
#ifndef METALEAK_PRIVACY_ANONYMIZATION_H_
#define METALEAK_PRIVACY_ANONYMIZATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "partition/attribute_set.h"

namespace metaleak {

/// Size of the smallest equivalence group under projection to `quasi_id`
/// (rows with equal quasi-identifier values form a group). Returns the
/// row count's minimum group size; 0 for an empty relation.
Result<size_t> MinGroupSize(const Relation& relation,
                            AttributeSet quasi_id);

/// True iff every tuple's quasi-identifier group has >= k members.
Result<bool> IsKAnonymous(const Relation& relation, AttributeSet quasi_id,
                          size_t k);

struct AnonymizationOptions {
  /// Target group size.
  size_t k = 2;
  /// Bins used for the first generalization pass over continuous
  /// attributes; each further pass halves the bin count (wider bins).
  size_t initial_bins = 16;
  /// Maximum generalization passes before falling back to suppression.
  size_t max_passes = 5;
};

struct AnonymizationResult {
  Relation relation;
  /// Rows dropped because even maximal generalization left their group
  /// under k.
  size_t suppressed_rows = 0;
  /// Generalization passes actually applied.
  size_t passes = 0;
};

/// Produces a k-anonymous view of `relation` under `quasi_id`.
/// Generalized continuous attributes become string interval labels
/// ("[lo,hi)"), so the output schema marks them categorical. Attributes
/// outside the quasi-identifier pass through unchanged.
Result<AnonymizationResult> Anonymize(const Relation& relation,
                                      AttributeSet quasi_id,
                                      const AnonymizationOptions& options =
                                          {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_ANONYMIZATION_H_
