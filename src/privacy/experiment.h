// Monte-Carlo experiment runner: the engine behind Tables III and IV.
//
// For each generation method (random baseline, or generation driven by a
// single dependency class, mirroring the paper's table columns) the
// runner generates R_syn `rounds` times, evaluates index-aligned leakage
// against R_real each round, and averages ("the MSE is the mean error
// over many generation rounds to decrease the variance").
#ifndef METALEAK_PRIVACY_EXPERIMENT_H_
#define METALEAK_PRIVACY_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"

namespace metaleak {

/// Which generation process produces R_syn. Each non-random method uses
/// only dependencies of its class (plus names and domains).
enum class GenerationMethod {
  kRandom,
  kFd,
  kAfd,
  kNd,
  kOd,
  kDd,
  kOfd,
  /// Conditional FDs: random roots repaired to satisfy disclosed CFDs.
  kCfd,
};

std::string GenerationMethodToString(GenerationMethod method);

struct ExperimentConfig {
  size_t rounds = 100;
  uint64_t seed = 20240001;
  LeakageOptions leakage;
  /// Worker threads for the Monte-Carlo rounds (fanned out over the
  /// shared pool, common/parallel.h). Rounds are independent and get
  /// their seeds up front, so the result is identical for any thread
  /// count. 0 = use the global pool size (METALEAK_THREADS / hardware).
  size_t threads = 1;
};

/// Averaged per-attribute outcome of one method.
struct MethodAttributeResult {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// False when no dependency of the method's class drives this attribute
  /// (the paper's NA cells). Always true for the random baseline.
  bool covered = true;
  double mean_matches = 0.0;
  double stddev_matches = 0.0;
  /// Continuous only.
  std::optional<double> mean_mse;
};

struct MethodResult {
  GenerationMethod method = GenerationMethod::kRandom;
  std::vector<MethodAttributeResult> attributes;

  Result<MethodAttributeResult> ForAttribute(size_t attribute) const;
};

/// Runs one method. `metadata` must disclose all domains; dependency
/// classes other than the method's are ignored.
Result<MethodResult> RunMethod(const Relation& real,
                               const MetadataPackage& metadata,
                               GenerationMethod method,
                               const ExperimentConfig& config = {});

/// Runs several methods under the same config (fresh derived RNG streams
/// per method, so methods are independent but reproducible).
Result<std::vector<MethodResult>> RunExperiment(
    const Relation& real, const MetadataPackage& metadata,
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_EXPERIMENT_H_
