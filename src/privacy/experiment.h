// Monte-Carlo experiment runner: the engine behind Tables III and IV.
//
// For each generation method (random baseline, or generation driven by a
// single dependency class, mirroring the paper's table columns) the
// runner generates R_syn `rounds` times, evaluates index-aligned leakage
// against R_real each round, and averages ("the MSE is the mean error
// over many generation rounds to decrease the variance").
//
// The hot loop runs on the dictionary-encoded code path: the real
// relation is encoded once, every round writes dense codes/doubles into a
// per-thread EncodedBatch arena, and per-round AttributeRoundStats stream
// into Welford accumulators — no Relation is materialized per round.
// Packages the code path cannot represent fall back to the boxed-Value
// reference pipeline; both paths reduce rounds to the same stats array
// and share the same fold, so their results are bit-identical.
#ifndef METALEAK_PRIVACY_EXPERIMENT_H_
#define METALEAK_PRIVACY_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"
#include "privacy/risk_estimator.h"

namespace metaleak {

/// Which generation process produces R_syn. Each non-random method uses
/// only dependencies of its class (plus names and domains).
enum class GenerationMethod {
  kRandom,
  kFd,
  kAfd,
  kNd,
  kOd,
  kDd,
  kOfd,
  /// Conditional FDs: random roots repaired to satisfy disclosed CFDs.
  kCfd,
  /// Everything the package discloses at once (all dependency classes +
  /// distributions when present) — the adversary of the attack simulator,
  /// as opposed to the single-class ablation columns above. Every
  /// attribute counts as covered.
  kFull,
};

std::string GenerationMethodToString(GenerationMethod method);

struct ExperimentConfig {
  size_t rounds = 100;
  uint64_t seed = 20240001;
  LeakageOptions leakage;
  /// Worker threads for the Monte-Carlo rounds (fanned out over the
  /// shared pool, common/parallel.h). Rounds are independent and get
  /// their seeds up front, so the result is identical for any thread
  /// count. 0 = use the global pool size (METALEAK_THREADS / hardware).
  size_t threads = 1;
  /// Force the boxed-Value reference pipeline even when the code path
  /// could run. Parity tests and benchmarks flip this to compare the
  /// two paths; results are bit-identical either way.
  bool use_value_path = false;
  /// Risk estimators to stream per round. nullptr = the default
  /// registry (Def 2.2/2.3 match-rate only — the pre-refactor
  /// behavior). The match-rate estimator must be first; estimators
  /// beyond it run only on the code path (MethodResult marks them
  /// inactive on the value-path fallback) and draw no randomness, so
  /// swapping registries never perturbs the generated batches or the
  /// legacy match/MSE statistics.
  const RiskEstimatorRegistry* estimators = nullptr;
};

/// Averaged per-attribute outcome of one method.
struct MethodAttributeResult {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// False when no dependency of the method's class drives this attribute
  /// (the paper's NA cells). Always true for the random baseline.
  bool covered = true;
  /// Rows each round compares for this attribute (non-null real cells);
  /// the denominator of a mean match *rate*.
  size_t rows_compared = 0;
  double mean_matches = 0.0;
  double stddev_matches = 0.0;
  /// Continuous only.
  std::optional<double> mean_mse;
};

/// Welford-aggregated statistics of one measure column across rounds,
/// per attribute. The match-rate estimator's "matches"/"mse" columns
/// appear here too — the legacy MethodAttributeResult fields are filled
/// from the same accumulators, so the two views can never drift.
struct RiskMeasureStats {
  std::string estimator;
  std::string measure;
  /// False when the execution path could not evaluate this estimator
  /// (estimators beyond match-rate need the code path); mean/stddev are
  /// zero-filled then.
  bool active = true;
  /// Per attribute: mean/stddev over the rounds where the cell was
  /// present, and how many rounds that was (0 = measure does not apply
  /// to the attribute, like MSE on a categorical column).
  std::vector<double> mean;
  std::vector<double> stddev;
  std::vector<size_t> rounds;

  Result<double> MeanFor(size_t attribute) const;
};

struct MethodResult {
  GenerationMethod method = GenerationMethod::kRandom;
  std::vector<MethodAttributeResult> attributes;
  /// One entry per measure column of every estimator in the registry
  /// the run used, in registry order.
  std::vector<RiskMeasureStats> measures;
  /// Seed of each round's derived RNG stream, in round order: round k of
  /// this run replays exactly as ExperimentEngine::ReplayRound(method,
  /// round_seeds[k]).
  std::vector<uint64_t> round_seeds;

  Result<MethodAttributeResult> ForAttribute(size_t attribute) const;
  /// The stats column for (estimator, measure); OutOfRange if the run's
  /// registry did not include it.
  Result<RiskMeasureStats> ForMeasure(const std::string& estimator,
                                      const std::string& measure) const;
};

/// One round's raw cells for one measure column — the replay-level
/// counterpart of RiskMeasureStats.
struct RoundMeasureValues {
  std::string estimator;
  std::string measure;
  /// One cell per attribute.
  std::vector<RiskMeasureCell> cells;
};

/// Runs experiment methods against one real relation. Encodes the real
/// relation once in the constructor; `real` and `metadata` must outlive
/// the engine. Run/RunAll/ReplayRound are const and thread-safe.
class ExperimentEngine {
 public:
  ExperimentEngine(const Relation& real, const MetadataPackage& metadata);

  /// Runs against a pre-built encoding instead of re-encoding the
  /// relation — the warm-snapshot path. `encoded.source()` must be
  /// non-null (the value-path fallback and per-attribute naming still
  /// read the backing relation) and outlive the engine, as must
  /// `encoded` and `metadata`.
  ExperimentEngine(const EncodedRelation& encoded,
                   const MetadataPackage& metadata);

  /// Runs one method. `metadata` must disclose all domains; dependency
  /// classes other than the method's are ignored.
  Result<MethodResult> Run(GenerationMethod method,
                           const ExperimentConfig& config = {}) const;

  /// Runs several methods under the same config (fresh derived RNG
  /// streams per method, so methods are independent but reproducible).
  Result<std::vector<MethodResult>> RunAll(
      const std::vector<GenerationMethod>& methods,
      const ExperimentConfig& config = {}) const;

  /// Re-executes a single recorded Monte-Carlo round (see
  /// MethodResult::round_seeds) and returns its full per-attribute
  /// report — the round's exact contribution to the recorded means.
  Result<LeakageReport> ReplayRound(GenerationMethod method,
                                    uint64_t round_seed,
                                    const ExperimentConfig& config = {}) const;

  /// Re-executes a single recorded round and returns the raw cells of
  /// every measure column the config's registry emits for it — the
  /// estimator-level drill-down next to ReplayRound's Def 2.2/2.3
  /// report. On the value-path fallback only the match-rate columns are
  /// returned.
  Result<std::vector<RoundMeasureValues>> ReplayRoundMeasures(
      GenerationMethod method, uint64_t round_seed,
      const ExperimentConfig& config = {}) const;

 private:
  struct MethodPlan;
  Result<MethodPlan> PlanFor(GenerationMethod method,
                             const ExperimentConfig& config) const;

  const Relation* real_;
  const MetadataPackage* metadata_;
  /// Set by the Relation constructor only; the EncodedRelation
  /// constructor borrows the caller's encoding instead.
  std::optional<EncodedRelation> owned_encoding_;
  const EncodedRelation* encoded_real_;
};

/// One-shot wrapper around ExperimentEngine::Run.
Result<MethodResult> RunMethod(const Relation& real,
                               const MetadataPackage& metadata,
                               GenerationMethod method,
                               const ExperimentConfig& config = {});

/// One-shot wrapper around ExperimentEngine::RunAll.
Result<std::vector<MethodResult>> RunExperiment(
    const Relation& real, const MetadataPackage& metadata,
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_EXPERIMENT_H_
