// Monte-Carlo experiment runner: the engine behind Tables III and IV.
//
// For each generation method (random baseline, or generation driven by a
// single dependency class, mirroring the paper's table columns) the
// runner generates R_syn `rounds` times, evaluates index-aligned leakage
// against R_real each round, and averages ("the MSE is the mean error
// over many generation rounds to decrease the variance").
//
// The hot loop runs on the dictionary-encoded code path: the real
// relation is encoded once, every round writes dense codes/doubles into a
// per-thread EncodedBatch arena, and per-round AttributeRoundStats stream
// into Welford accumulators — no Relation is materialized per round.
// Packages the code path cannot represent fall back to the boxed-Value
// reference pipeline; both paths reduce rounds to the same stats array
// and share the same fold, so their results are bit-identical.
#ifndef METALEAK_PRIVACY_EXPERIMENT_H_
#define METALEAK_PRIVACY_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"

namespace metaleak {

/// Which generation process produces R_syn. Each non-random method uses
/// only dependencies of its class (plus names and domains).
enum class GenerationMethod {
  kRandom,
  kFd,
  kAfd,
  kNd,
  kOd,
  kDd,
  kOfd,
  /// Conditional FDs: random roots repaired to satisfy disclosed CFDs.
  kCfd,
  /// Everything the package discloses at once (all dependency classes +
  /// distributions when present) — the adversary of the attack simulator,
  /// as opposed to the single-class ablation columns above. Every
  /// attribute counts as covered.
  kFull,
};

std::string GenerationMethodToString(GenerationMethod method);

struct ExperimentConfig {
  size_t rounds = 100;
  uint64_t seed = 20240001;
  LeakageOptions leakage;
  /// Worker threads for the Monte-Carlo rounds (fanned out over the
  /// shared pool, common/parallel.h). Rounds are independent and get
  /// their seeds up front, so the result is identical for any thread
  /// count. 0 = use the global pool size (METALEAK_THREADS / hardware).
  size_t threads = 1;
  /// Force the boxed-Value reference pipeline even when the code path
  /// could run. Parity tests and benchmarks flip this to compare the
  /// two paths; results are bit-identical either way.
  bool use_value_path = false;
};

/// Averaged per-attribute outcome of one method.
struct MethodAttributeResult {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// False when no dependency of the method's class drives this attribute
  /// (the paper's NA cells). Always true for the random baseline.
  bool covered = true;
  /// Rows each round compares for this attribute (non-null real cells);
  /// the denominator of a mean match *rate*.
  size_t rows_compared = 0;
  double mean_matches = 0.0;
  double stddev_matches = 0.0;
  /// Continuous only.
  std::optional<double> mean_mse;
};

struct MethodResult {
  GenerationMethod method = GenerationMethod::kRandom;
  std::vector<MethodAttributeResult> attributes;
  /// Seed of each round's derived RNG stream, in round order: round k of
  /// this run replays exactly as ExperimentEngine::ReplayRound(method,
  /// round_seeds[k]).
  std::vector<uint64_t> round_seeds;

  Result<MethodAttributeResult> ForAttribute(size_t attribute) const;
};

/// Runs experiment methods against one real relation. Encodes the real
/// relation once in the constructor; `real` and `metadata` must outlive
/// the engine. Run/RunAll/ReplayRound are const and thread-safe.
class ExperimentEngine {
 public:
  ExperimentEngine(const Relation& real, const MetadataPackage& metadata);

  /// Runs against a pre-built encoding instead of re-encoding the
  /// relation — the warm-snapshot path. `encoded.source()` must be
  /// non-null (the value-path fallback and per-attribute naming still
  /// read the backing relation) and outlive the engine, as must
  /// `encoded` and `metadata`.
  ExperimentEngine(const EncodedRelation& encoded,
                   const MetadataPackage& metadata);

  /// Runs one method. `metadata` must disclose all domains; dependency
  /// classes other than the method's are ignored.
  Result<MethodResult> Run(GenerationMethod method,
                           const ExperimentConfig& config = {}) const;

  /// Runs several methods under the same config (fresh derived RNG
  /// streams per method, so methods are independent but reproducible).
  Result<std::vector<MethodResult>> RunAll(
      const std::vector<GenerationMethod>& methods,
      const ExperimentConfig& config = {}) const;

  /// Re-executes a single recorded Monte-Carlo round (see
  /// MethodResult::round_seeds) and returns its full per-attribute
  /// report — the round's exact contribution to the recorded means.
  Result<LeakageReport> ReplayRound(GenerationMethod method,
                                    uint64_t round_seed,
                                    const ExperimentConfig& config = {}) const;

 private:
  struct MethodPlan;
  Result<MethodPlan> PlanFor(GenerationMethod method,
                             const ExperimentConfig& config) const;

  const Relation* real_;
  const MetadataPackage* metadata_;
  /// Set by the Relation constructor only; the EncodedRelation
  /// constructor borrows the caller's encoding instead.
  std::optional<EncodedRelation> owned_encoding_;
  const EncodedRelation* encoded_real_;
};

/// One-shot wrapper around ExperimentEngine::Run.
Result<MethodResult> RunMethod(const Relation& real,
                               const MetadataPackage& metadata,
                               GenerationMethod method,
                               const ExperimentConfig& config = {});

/// One-shot wrapper around ExperimentEngine::RunAll.
Result<std::vector<MethodResult>> RunExperiment(
    const Relation& real, const MetadataPackage& metadata,
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_EXPERIMENT_H_
