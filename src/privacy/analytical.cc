#include "privacy/analytical.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_util.h"
#include "common/random.h"

namespace metaleak {

double ExpectedRandomCategoricalMatches(size_t num_rows,
                                        const Domain& domain) {
  double size = domain.Size();
  if (size <= 0.0) return 0.0;
  return BinomialExpectation(static_cast<int64_t>(num_rows), 1.0 / size);
}

double ExpectedRandomContinuousMatches(size_t num_rows, const Domain& domain,
                                       double epsilon) {
  double range = domain.range();
  if (range <= 0.0) return static_cast<double>(num_rows);
  // For a uniform target the epsilon ball is clipped at the boundary;
  // averaging the clipped length over targets gives
  // 2*eps - eps^2/range (for eps <= range).
  double eps = std::min(epsilon, range);
  double p = (2.0 * eps - eps * eps / range) / range;
  p = std::clamp(p, 0.0, 1.0);
  return BinomialExpectation(static_cast<int64_t>(num_rows), p);
}

double ExpectedRandomContinuousMse(const Domain& domain) {
  double range = domain.range();
  // X, Y iid Uniform[a,b]: E[(X-Y)^2] = Var(X) + Var(Y) = 2 * range^2/12.
  return range * range / 6.0;
}

double ExpectedCorrectFdMappings(const Domain& lhs, const Domain& rhs) {
  double rhs_size = rhs.Size();
  if (rhs_size <= 0.0) return 0.0;
  return lhs.Size() / rhs_size;
}

double ExpectedFdRhsMatches(size_t num_rows, const Domain& rhs) {
  return ExpectedRandomCategoricalMatches(num_rows, rhs);
}

double ExpectedNdPairMatches(size_t num_rows, const Domain& lhs,
                             const Domain& rhs, size_t fanout) {
  double lhs_size = lhs.Size();
  double rhs_size = rhs.Size();
  if (lhs_size <= 0.0 || rhs_size <= 0.0) return 0.0;
  return static_cast<double>(num_rows) * static_cast<double>(fanout) /
         (lhs_size * rhs_size);
}

double NdAtLeastOneCorrectMapping(const Domain& rhs, size_t fanout) {
  int64_t population = static_cast<int64_t>(rhs.Size());
  int64_t k = static_cast<int64_t>(fanout);
  return HypergeometricAtLeastOne(population, /*successes=*/k, /*draws=*/k);
}

double ExpectedNdRhsMatches(size_t num_rows, const Domain& rhs) {
  return ExpectedRandomCategoricalMatches(num_rows, rhs);
}

double ExpectedOdMatches(size_t num_rows, size_t num_partitions,
                         const Domain& rhs, double epsilon,
                         uint64_t resolution) {
  if (num_partitions == 0 || num_rows == 0) return 0.0;
  double range = rhs.range();
  if (range <= 0.0) return static_cast<double>(num_rows);
  size_t n = num_partitions;

  // Numerical evaluation of sum_i N_i * theta_{y_i}: draw the generated
  // and (uniform-assumption) real endpoint sequences as order statistics
  // and average the per-partition epsilon-hit indicator. Seeded, so the
  // "analytical" value is deterministic.
  Rng rng(0xD1CE5EEDULL);
  double rows_per_partition =
      static_cast<double>(num_rows) / static_cast<double>(n);
  double total = 0.0;
  std::vector<double> gen(n);
  std::vector<double> real(n);
  for (uint64_t rep = 0; rep < resolution; ++rep) {
    for (size_t i = 0; i < n; ++i) {
      gen[i] = rng.UniformDouble(rhs.lo(), rhs.hi());
      real[i] = rng.UniformDouble(rhs.lo(), rhs.hi());
    }
    std::sort(gen.begin(), gen.end());
    std::sort(real.begin(), real.end());
    for (size_t i = 0; i < n; ++i) {
      if (std::abs(gen[i] - real[i]) <= epsilon) {
        total += rows_per_partition;
      }
    }
  }
  return total / static_cast<double>(resolution);
}

double ExpectedAfdMatches(size_t num_rows, const Domain& rhs,
                          double g3_error) {
  g3_error = std::clamp(g3_error, 0.0, 1.0);
  // Mapped fraction and re-drawn fraction share the 1/|D| marginal.
  double mapped = (1.0 - g3_error) *
                  ExpectedRandomCategoricalMatches(num_rows, rhs);
  double redrawn =
      g3_error * ExpectedRandomCategoricalMatches(num_rows, rhs);
  return mapped + redrawn;
}

double OfdTransitionProbability(size_t lhs_partitions, size_t step,
                                const Domain& rhs) {
  double dy = rhs.Size();
  if (dy <= 0.0) return 1.0;
  double remaining = static_cast<double>(lhs_partitions) -
                     static_cast<double>(std::min(step, lhs_partitions));
  double p = 1.0 - remaining / dy;
  return std::clamp(p, 0.0, 1.0);
}

double ExpectedOfdMatches(size_t num_rows, size_t num_partitions,
                          const Domain& rhs, double epsilon,
                          uint64_t resolution) {
  if (num_partitions == 0 || num_rows == 0) return 0.0;
  double range = rhs.range();
  if (range <= 0.0) return static_cast<double>(num_rows);
  size_t n = num_partitions;

  // Strictly increasing walk: for continuous domains uniform order
  // statistics are strictly increasing almost surely, so the numerical
  // evaluation mirrors ExpectedOdMatches with the same seed discipline.
  Rng rng(0x0FD5EEDULL);
  double rows_per_partition =
      static_cast<double>(num_rows) / static_cast<double>(n);
  double total = 0.0;
  std::vector<double> gen(n);
  std::vector<double> real(n);
  for (uint64_t rep = 0; rep < resolution; ++rep) {
    for (size_t i = 0; i < n; ++i) {
      gen[i] = rng.UniformDouble(rhs.lo(), rhs.hi());
      real[i] = rng.UniformDouble(rhs.lo(), rhs.hi());
    }
    std::sort(gen.begin(), gen.end());
    std::sort(real.begin(), real.end());
    for (size_t i = 0; i < n; ++i) {
      if (std::abs(gen[i] - real[i]) <= epsilon) {
        total += rows_per_partition;
      }
    }
  }
  return total / static_cast<double>(resolution);
}

double ExpectedDdMatches(size_t num_rows, const Domain& rhs, double epsilon,
                         double delta, double restart_rate) {
  double range = rhs.range();
  if (range <= 0.0) return static_cast<double>(num_rows);
  restart_rate = std::clamp(restart_rate, 0.0, 1.0);
  // Restarted rows are uniform draws; chained rows draw from a
  // 2*delta-wide ball that must intersect the real value's epsilon ball.
  double p_restart =
      ExpectedRandomContinuousMatches(1, rhs, epsilon);  // per row
  double chained_window = std::min(2.0 * (epsilon + delta), range);
  double p_chained = std::clamp(chained_window / range, 0.0, 1.0) *
                     std::clamp(2.0 * epsilon /
                                    std::max(2.0 * delta, 1e-12),
                                0.0, 1.0);
  double p = restart_rate * p_restart + (1.0 - restart_rate) * p_chained;
  return static_cast<double>(num_rows) * p;
}

}  // namespace metaleak
