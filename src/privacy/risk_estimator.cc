#include "privacy/risk_estimator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/math_util.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "metadata/dependency.h"

namespace metaleak {

namespace {

Status CheckContext(const RiskContext& ctx) {
  if (ctx.real == nullptr || ctx.syn_schema == nullptr ||
      ctx.domains == nullptr) {
    return Status::Invalid("risk context missing real/schema/domains");
  }
  const size_t m = ctx.real->num_columns();
  if (m != ctx.syn_schema->num_attributes() || m != ctx.domains->size()) {
    return Status::Invalid("relations have different arity");
  }
  for (size_t c = 0; c < m; ++c) {
    if (ctx.real->schema().attribute(c).name !=
        ctx.syn_schema->attribute(c).name) {
      return Status::Invalid("attribute name mismatch at index " +
                             std::to_string(c));
    }
  }
  return Status::OK();
}

// Joint code-pair counter shared by the conditional-entropy and MI
// computations. Dense array when the code product fits a 16 MiB budget,
// hash map otherwise (at most one entry per row either way).
constexpr uint64_t kDenseJointLimit = uint64_t{1} << 22;

// Accumulates joint counts over (a[r], b[r]) pairs and hands the
// nonzero counts plus the pair identities to `sink(x, y, count)`.
template <typename Sink>
void ForEachJointCount(const CodeColumnView& a, uint32_t num_a,
                       const CodeColumnView& b, uint32_t num_b,
                       Sink&& sink) {
  const size_t n = a.size;
  const uint64_t cells = uint64_t{num_a} * uint64_t{num_b};
  if (cells <= kDenseJointLimit) {
    std::vector<uint32_t> joint(static_cast<size_t>(cells), 0);
    a.With([&](const auto* ap) {
      b.With([&](const auto* bp) {
        for (size_t r = 0; r < n; ++r) {
          joint[static_cast<size_t>(ap[r]) * num_b + bp[r]]++;
        }
      });
    });
    for (uint32_t x = 0; x < num_a; ++x) {
      const uint32_t* row = joint.data() + static_cast<size_t>(x) * num_b;
      for (uint32_t y = 0; y < num_b; ++y) {
        if (row[y] != 0) sink(x, y, row[y]);
      }
    }
    return;
  }
  std::unordered_map<uint64_t, uint32_t> joint;
  joint.reserve(std::min<size_t>(n, 1u << 20));
  a.With([&](const auto* ap) {
    b.With([&](const auto* bp) {
      for (size_t r = 0; r < n; ++r) {
        joint[(uint64_t{ap[r]} << 32) | bp[r]]++;
      }
    });
  });
  for (const auto& [key, count] : joint) {
    sink(static_cast<uint32_t>(key >> 32), static_cast<uint32_t>(key),
         count);
  }
}

// H(a, b) - H(a) over all rows, NULL (code 0) participating as its own
// symbol. Clamped at 0: the difference is mathematically non-negative
// but the two log-sums round independently.
double ConditionalEntropyBits(const EncodedRelation& real, size_t lhs,
                              size_t rhs) {
  const ColumnDictionary& dict_a = real.dictionary(lhs);
  const ColumnDictionary& dict_b = real.dictionary(rhs);
  std::vector<size_t> joint_counts;
  ForEachJointCount(real.column_view(lhs), dict_a.num_codes(),
                    real.column_view(rhs), dict_b.num_codes(),
                    [&](uint32_t, uint32_t, uint32_t count) {
                      joint_counts.push_back(count);
                    });
  std::vector<size_t> lhs_counts(dict_a.num_codes());
  for (uint32_t code = 0; code < dict_a.num_codes(); ++code) {
    lhs_counts[code] = dict_a.count(code);
  }
  return std::max(0.0, ShannonEntropyBits(joint_counts) -
                           ShannonEntropyBits(lhs_counts));
}

// Entropy of the disclosed non-null marginal (codes 1..K), matching the
// frequency table ValueDistribution::FromEncoded reads off the same
// dictionary.
double MarginalEntropyBits(const ColumnDictionary& dict) {
  std::vector<size_t> counts;
  counts.reserve(dict.num_codes() > 0 ? dict.num_codes() - 1 : 0);
  for (uint32_t code = 1; code < dict.num_codes(); ++code) {
    counts.push_back(dict.count(code));
  }
  return ShannonEntropyBits(counts);
}

// The batch-independent info-theoretic cells for one attribute, shared
// by InfoTheoreticEstimator::Bind and ComputeProfileMeasures so the
// per-round estimator and the cached profile can never disagree.
RiskMeasureCell EntropyCell(const EncodedRelation& real, size_t c) {
  return RiskMeasureCell{MarginalEntropyBits(real.dictionary(c)), true};
}

RiskMeasureCell CondEntropyCell(const EncodedRelation& real,
                                const MetadataPackage* metadata, size_t c) {
  RiskMeasureCell cell;
  if (metadata == nullptr) return cell;
  for (const Dependency& dep : metadata->dependencies.all()) {
    if (dep.rhs != c || dep.lhs.size() != 1) continue;
    const size_t lhs = dep.lhs.ToIndices()[0];
    if (lhs >= real.num_columns()) continue;
    const double h = ConditionalEntropyBits(real, lhs, c);
    if (!cell.present || h < cell.value) cell = RiskMeasureCell{h, true};
  }
  return cell;
}

// Equi-width generation-domain bin of x, clamped into [0, kMiBins).
// inv_width == 0 marks a degenerate (empty-range) domain: one bin.
uint32_t MiBinOf(double lo, double inv_width, double x) {
  constexpr uint32_t kBins = InfoTheoreticEstimator::kMiBins;
  if (inv_width <= 0.0 || x <= lo) return 0;
  const double b = (x - lo) * inv_width;
  if (b >= static_cast<double>(kBins - 1)) return kBins - 1;
  return static_cast<uint32_t>(b);
}

// MI from joint counts: sum p_xy log2(c_xy * n / (c_x * c_y)).
double MiFromCounts(const std::vector<uint32_t>& joint, uint32_t num_a,
                    uint32_t num_b, const uint64_t* a_counts,
                    const uint64_t* b_counts, uint64_t n) {
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  double mi = 0.0;
  for (uint32_t x = 0; x < num_a; ++x) {
    if (a_counts[x] == 0) continue;
    const uint32_t* row = joint.data() + static_cast<size_t>(x) * num_b;
    const double cx = static_cast<double>(a_counts[x]);
    for (uint32_t y = 0; y < num_b; ++y) {
      if (row[y] == 0) continue;
      const double cxy = static_cast<double>(row[y]);
      mi += (cxy / dn) *
            std::log2(cxy * dn / (cx * static_cast<double>(b_counts[y])));
    }
  }
  return mi;
}

// --- MatchRateEstimator --------------------------------------------------

class MatchRateBound : public BoundRiskEstimator {
 public:
  explicit MatchRateBound(EncodedLeakageContext ctx) : ctx_(std::move(ctx)) {}

  Status Evaluate(const EncodedBatch& batch,
                  RiskMeasureCell* cells) const override {
    const size_t m = ctx_.num_attributes();
    thread_local std::vector<AttributeRoundStats> stats;
    stats.assign(m, AttributeRoundStats{});
    METALEAK_RETURN_NOT_OK(ctx_.Evaluate(batch, stats.data()));
    for (size_t c = 0; c < m; ++c) {
      cells[MatchRateEstimator::kMatchesIndex * m + c] =
          RiskMeasureCell{static_cast<double>(stats[c].matches), true};
      cells[MatchRateEstimator::kMseIndex * m + c] =
          stats[c].has_mse ? RiskMeasureCell{stats[c].mse, true}
                           : RiskMeasureCell{};
    }
    return Status::OK();
  }

  const EncodedLeakageContext* leakage_context() const override {
    return &ctx_;
  }

 private:
  EncodedLeakageContext ctx_;
};

// --- InfoTheoreticEstimator ----------------------------------------------

class InfoTheoreticBound : public BoundRiskEstimator {
 public:
  static constexpr uint32_t kSkipBin = 0xFFFFFFFFu;

  struct Attr {
    RiskMeasureCell entropy;
    RiskMeasureCell cond_entropy;
    bool mi_codes = false;  // joint over (dict code, domain code) pairs
    // Code-pair MI inputs.
    CodeColumnView real_codes;
    uint32_t real_num_codes = 0;
    uint32_t syn_num_codes = 0;
    std::vector<uint64_t> real_counts;  // dict counts incl. NULL
    // Bin MI inputs (real-stored columns).
    std::vector<uint32_t> real_bins;  // per row; kSkipBin = NULL/non-num
    double bin_lo = 0.0;
    double bin_inv_width = 0.0;  // 0 = degenerate range, everything bin 0
  };

  explicit InfoTheoreticBound(std::vector<Attr> attrs)
      : attrs_(std::move(attrs)) {}

  Status Evaluate(const EncodedBatch& batch,
                  RiskMeasureCell* cells) const override {
    const size_t m = attrs_.size();
    if (batch.num_columns() != m) {
      return Status::Invalid("relations have different arity");
    }
    for (size_t c = 0; c < m; ++c) {
      const Attr& attr = attrs_[c];
      cells[InfoTheoreticEstimator::kEntropyIndex * m + c] = attr.entropy;
      cells[InfoTheoreticEstimator::kCondEntropyIndex * m + c] =
          attr.cond_entropy;
      cells[InfoTheoreticEstimator::kMiIndex * m + c] =
          RiskMeasureCell{attr.mi_codes ? CodeMi(attr, batch, c)
                                        : BinMi(attr, batch, c),
                          true};
    }
    return Status::OK();
  }

 private:
  double CodeMi(const Attr& attr, const EncodedBatch& batch,
                size_t c) const {
    const size_t n = batch.num_rows();
    const uint32_t num_a = attr.real_num_codes;
    const uint32_t num_b = attr.syn_num_codes;
    // Generated-side marginal via the SIMD histogram kernels; real-side
    // marginal straight off the dictionary counts.
    thread_local std::vector<uint32_t> syn_counts;
    syn_counts.assign(num_b, 0);
    HistogramCodes(ActiveSimdLevel(), batch.code_view(c), num_b,
                   syn_counts.data());
    const double dn = static_cast<double>(n);
    double mi = 0.0;
    ForEachJointCount(
        attr.real_codes, num_a, batch.code_view(c), num_b,
        [&](uint32_t x, uint32_t y, uint32_t count) {
          const double cxy = static_cast<double>(count);
          mi += (cxy / dn) *
                std::log2(cxy * dn /
                          (static_cast<double>(attr.real_counts[x]) *
                           static_cast<double>(syn_counts[y])));
        });
    return mi;
  }

  double BinMi(const Attr& attr, const EncodedBatch& batch,
               size_t c) const {
    constexpr uint32_t kBins = InfoTheoreticEstimator::kMiBins;
    const std::vector<double>& syn = batch.reals(c);
    const size_t n = std::min(syn.size(), attr.real_bins.size());
    thread_local std::vector<uint32_t> joint;
    joint.assign(static_cast<size_t>(kBins) * kBins, 0);
    uint64_t included = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint32_t rb = attr.real_bins[r];
      if (rb == kSkipBin) continue;
      const double s = syn[r];
      if (std::isnan(s)) continue;
      joint[static_cast<size_t>(rb) * kBins +
            MiBinOf(attr.bin_lo, attr.bin_inv_width, s)]++;
      ++included;
    }
    uint64_t row_sums[kBins] = {0};
    uint64_t col_sums[kBins] = {0};
    for (uint32_t x = 0; x < kBins; ++x) {
      for (uint32_t y = 0; y < kBins; ++y) {
        const uint32_t v = joint[static_cast<size_t>(x) * kBins + y];
        row_sums[x] += v;
        col_sums[y] += v;
      }
    }
    return MiFromCounts(joint, kBins, kBins, row_sums, col_sums, included);
  }

  std::vector<Attr> attrs_;
};

// --- NnLinkageEstimator --------------------------------------------------

class NnLinkageBound : public BoundRiskEstimator {
 public:
  struct Attr {
    bool active = false;  // continuous attributes only
    double epsilon = 0.0;
    std::vector<double> real_numeric;  // per row, NaN = skip
    bool coded = false;
    std::vector<double> code_numeric;  // syn code -> numeric, NaN = NULL
  };

  explicit NnLinkageBound(std::vector<Attr> attrs)
      : attrs_(std::move(attrs)) {}

  Status Evaluate(const EncodedBatch& batch,
                  RiskMeasureCell* cells) const override {
    const size_t m = attrs_.size();
    if (batch.num_columns() != m) {
      return Status::Invalid("relations have different arity");
    }
    for (size_t c = 0; c < m; ++c) {
      const Attr& attr = attrs_[c];
      RiskMeasureCell& eps_cell =
          cells[NnLinkageEstimator::kEpsMatchesIndex * m + c];
      RiskMeasureCell& top1_cell =
          cells[NnLinkageEstimator::kTop1HitsIndex * m + c];
      if (!attr.active) {
        eps_cell = RiskMeasureCell{};
        top1_cell = RiskMeasureCell{};
        continue;
      }
      size_t eps_matches = 0;
      size_t top1_hits = 0;
      ScoreAttribute(attr, batch, c, &eps_matches, &top1_hits);
      eps_cell = RiskMeasureCell{static_cast<double>(eps_matches), true};
      top1_cell = RiskMeasureCell{static_cast<double>(top1_hits), true};
    }
    return Status::OK();
  }

 private:
  // Synthetic value of row r, NaN when the generator emitted NULL.
  double SynAt(const Attr& attr, const EncodedBatch& batch, size_t c,
               size_t r) const {
    return attr.coded ? attr.code_numeric[batch.code_at(c, r)]
                      : batch.reals(c)[r];
  }

  void ScoreAttribute(const Attr& attr, const EncodedBatch& batch, size_t c,
                      size_t* eps_matches, size_t* top1_hits) const {
    const size_t n = batch.num_rows();
    thread_local std::vector<double> sorted;
    sorted.clear();
    sorted.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      const double s = SynAt(attr, batch, c, r);
      if (!std::isnan(s)) sorted.push_back(s);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.empty()) return;
    const size_t rows = std::min(n, attr.real_numeric.size());
    for (size_t r = 0; r < rows; ++r) {
      const double x = attr.real_numeric[r];
      if (std::isnan(x)) continue;
      auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
      double mindist = std::numeric_limits<double>::infinity();
      if (it != sorted.end()) mindist = *it - x;
      if (it != sorted.begin()) {
        mindist = std::min(mindist, x - *(it - 1));
      }
      if (mindist <= attr.epsilon) ++*eps_matches;
      const double aligned = SynAt(attr, batch, c, r);
      // The adversary's top-1 link is correct when the index-aligned
      // value ties the nearest-neighbor distance (ties count).
      if (!std::isnan(aligned) && std::abs(x - aligned) <= mindist) {
        ++*top1_hits;
      }
    }
  }

  std::vector<Attr> attrs_;
};

}  // namespace

// --- MatchRateEstimator --------------------------------------------------

const MatchRateEstimator& MatchRateEstimator::Instance() {
  static const MatchRateEstimator instance;
  return instance;
}

const std::string& MatchRateEstimator::name() const {
  static const std::string name = "match_rate";
  return name;
}

const std::vector<RiskMeasureSpec>& MatchRateEstimator::measures() const {
  static const std::vector<RiskMeasureSpec> specs = {
      {"matches", "Def 2.2/2.3 matches"},
      {"mse", "MSE"},
  };
  return specs;
}

Result<std::unique_ptr<BoundRiskEstimator>> MatchRateEstimator::Bind(
    const RiskContext& ctx) const {
  METALEAK_RETURN_NOT_OK(CheckContext(ctx));
  METALEAK_ASSIGN_OR_RETURN(
      EncodedLeakageContext leakage_ctx,
      EncodedLeakageContext::Build(*ctx.real, *ctx.syn_schema, *ctx.domains,
                                   ctx.leakage));
  return std::unique_ptr<BoundRiskEstimator>(
      new MatchRateBound(std::move(leakage_ctx)));
}

// --- InfoTheoreticEstimator ----------------------------------------------

const InfoTheoreticEstimator& InfoTheoreticEstimator::Instance() {
  static const InfoTheoreticEstimator instance;
  return instance;
}

const std::string& InfoTheoreticEstimator::name() const {
  static const std::string name = "info_theoretic";
  return name;
}

const std::vector<RiskMeasureSpec>& InfoTheoreticEstimator::measures()
    const {
  static const std::vector<RiskMeasureSpec> specs = {
      {"entropy_bits", "H(attr) [bits]"},
      {"cond_entropy_bits", "min H(attr | disclosed dep) [bits]"},
      {"mi_bits", "MI(real; gen) [bits]"},
  };
  return specs;
}

Result<std::unique_ptr<BoundRiskEstimator>> InfoTheoreticEstimator::Bind(
    const RiskContext& ctx) const {
  METALEAK_RETURN_NOT_OK(CheckContext(ctx));
  const EncodedRelation& real = *ctx.real;
  const size_t m = real.num_columns();
  const std::vector<EncodedBatch::ColumnKind> kinds =
      ColumnKindsForDomains(*ctx.domains);
  std::vector<InfoTheoreticBound::Attr> attrs(m);
  for (size_t c = 0; c < m; ++c) {
    InfoTheoreticBound::Attr& attr = attrs[c];
    const ColumnDictionary& dict = real.dictionary(c);
    attr.entropy = EntropyCell(real, c);
    attr.cond_entropy = CondEntropyCell(real, ctx.metadata, c);
    if (kinds[c] == EncodedBatch::ColumnKind::kCodes) {
      attr.mi_codes = true;
      attr.real_codes = real.column_view(c);
      attr.real_num_codes = dict.num_codes();
      attr.syn_num_codes =
          static_cast<uint32_t>((*ctx.domains)[c].values().size()) + 1;
      attr.real_counts.resize(dict.num_codes());
      for (uint32_t code = 0; code < dict.num_codes(); ++code) {
        attr.real_counts[code] = dict.count(code);
      }
    } else {
      const Domain& domain = (*ctx.domains)[c];
      attr.bin_lo = domain.lo();
      attr.bin_inv_width =
          domain.range() > 0.0
              ? static_cast<double>(kMiBins) / domain.range()
              : 0.0;
      const std::vector<double> by_code = dict.NumericByCode();
      const CodeColumnView col = real.column_view(c);
      attr.real_bins.resize(real.num_rows());
      for (size_t r = 0; r < real.num_rows(); ++r) {
        const double x = by_code[col.at(r)];
        attr.real_bins[r] =
            std::isnan(x)
                ? InfoTheoreticBound::kSkipBin
                : MiBinOf(attr.bin_lo, attr.bin_inv_width, x);
      }
    }
  }
  return std::unique_ptr<BoundRiskEstimator>(
      new InfoTheoreticBound(std::move(attrs)));
}

// --- NnLinkageEstimator --------------------------------------------------

const NnLinkageEstimator& NnLinkageEstimator::Instance() {
  static const NnLinkageEstimator instance;
  return instance;
}

const std::string& NnLinkageEstimator::name() const {
  static const std::string name = "nn_linkage";
  return name;
}

const std::vector<RiskMeasureSpec>& NnLinkageEstimator::measures() const {
  static const std::vector<RiskMeasureSpec> specs = {
      {"nn_eps_matches", "NN eps-ball links"},
      {"nn_top1_hits", "NN top-1 correct links"},
  };
  return specs;
}

Result<std::unique_ptr<BoundRiskEstimator>> NnLinkageEstimator::Bind(
    const RiskContext& ctx) const {
  METALEAK_RETURN_NOT_OK(CheckContext(ctx));
  const EncodedRelation& real = *ctx.real;
  const size_t m = real.num_columns();
  const std::vector<EncodedBatch::ColumnKind> kinds =
      ColumnKindsForDomains(*ctx.domains);
  std::vector<NnLinkageBound::Attr> attrs(m);
  for (size_t c = 0; c < m; ++c) {
    if (real.schema().attribute(c).semantic != SemanticType::kContinuous) {
      continue;
    }
    NnLinkageBound::Attr& attr = attrs[c];
    attr.active = true;
    // Same epsilon policy as the Def 2.3 scan.
    if (ctx.leakage.absolute_epsilon.has_value()) {
      attr.epsilon = *ctx.leakage.absolute_epsilon;
    } else {
      Result<Domain> domain = real.DomainOf(c);
      attr.epsilon =
          domain.ok() ? ctx.leakage.epsilon_fraction * domain->range() : 0.0;
    }
    const std::vector<double> by_code = real.dictionary(c).NumericByCode();
    const CodeColumnView col = real.column_view(c);
    attr.real_numeric.resize(real.num_rows());
    for (size_t r = 0; r < real.num_rows(); ++r) {
      attr.real_numeric[r] = by_code[col.at(r)];
    }
    if (kinds[c] == EncodedBatch::ColumnKind::kCodes) {
      attr.coded = true;
      const std::vector<Value>& domain_values = (*ctx.domains)[c].values();
      attr.code_numeric.assign(domain_values.size() + 1,
                               std::numeric_limits<double>::quiet_NaN());
      for (size_t i = 0; i < domain_values.size(); ++i) {
        if (domain_values[i].is_numeric()) {
          attr.code_numeric[i + 1] = domain_values[i].AsNumeric();
        }
      }
    }
  }
  return std::unique_ptr<BoundRiskEstimator>(
      new NnLinkageBound(std::move(attrs)));
}

// --- Registry ------------------------------------------------------------

RiskEstimatorRegistry::RiskEstimatorRegistry(
    std::vector<const RiskEstimator*> estimators)
    : estimators_(std::move(estimators)) {}

const RiskEstimatorRegistry& RiskEstimatorRegistry::Default() {
  static const RiskEstimatorRegistry registry(
      {&MatchRateEstimator::Instance()});
  return registry;
}

const RiskEstimatorRegistry& RiskEstimatorRegistry::All() {
  static const RiskEstimatorRegistry registry(
      {&MatchRateEstimator::Instance(),
       &InfoTheoreticEstimator::Instance(),
       &NnLinkageEstimator::Instance()});
  return registry;
}

size_t RiskEstimatorRegistry::total_measures() const {
  size_t total = 0;
  for (const RiskEstimator* est : estimators_) {
    total += est->measures().size();
  }
  return total;
}

// --- Profile measures ----------------------------------------------------

Result<std::vector<RiskProfileMeasure>> ComputeProfileMeasures(
    const EncodedRelation& real, const MetadataPackage& metadata) {
  const size_t m = real.num_columns();
  RiskProfileMeasure entropy;
  entropy.estimator = InfoTheoreticEstimator::Instance().name();
  entropy.measure =
      InfoTheoreticEstimator::Instance()
          .measures()[InfoTheoreticEstimator::kEntropyIndex]
          .key;
  entropy.cells.resize(m);
  RiskProfileMeasure cond;
  cond.estimator = entropy.estimator;
  cond.measure = InfoTheoreticEstimator::Instance()
                     .measures()[InfoTheoreticEstimator::kCondEntropyIndex]
                     .key;
  cond.cells.resize(m);
  for (size_t c = 0; c < m; ++c) {
    entropy.cells[c] = EntropyCell(real, c);
    cond.cells[c] = CondEntropyCell(real, &metadata, c);
  }
  std::vector<RiskProfileMeasure> out;
  out.push_back(std::move(entropy));
  out.push_back(std::move(cond));
  return out;
}

}  // namespace metaleak
