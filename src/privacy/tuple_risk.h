// Per-tuple reconstruction risk.
//
// The paper's Section V discussion: "The precise index of the
// appropriate generation may not be critically important" — a correctly
// generated value is valuable (e.g. for targeted advertising) whichever
// row it lands on, and some tuples are reconstructed far more often than
// the per-attribute averages suggest. This module scores each tuple:
// how many of its attribute values the adversary reproduces per round,
// aggregated over Monte-Carlo rounds, and cross-references Definition
// 2.1 (is the tuple identifiable?) so the rows that are both *unique*
// and *reconstructible* surface at the top.
#ifndef METALEAK_PRIVACY_TUPLE_RISK_H_
#define METALEAK_PRIVACY_TUPLE_RISK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"

namespace metaleak {

struct TupleRisk {
  size_t row = 0;
  /// Mean number of this tuple's attributes matched per round
  /// (Def 2.2/2.3 semantics per cell).
  double mean_matched_attributes = 0.0;
  /// Highest count observed in any round.
  size_t max_matched_attributes = 0;
  /// Fraction of rounds in which at least half the tuple's non-null
  /// attributes matched.
  double half_reconstructed_rate = 0.0;
  /// Definition 2.1: unique under some subset of bounded width.
  bool identifiable = false;
};

struct TupleRiskOptions {
  size_t rounds = 100;
  uint64_t seed = 77;
  LeakageOptions leakage;
  /// Quasi-identifier width for the identifiability cross-reference.
  size_t identifiability_max_width = 2;
};

struct TupleRiskReport {
  std::vector<TupleRisk> tuples;  // sorted, highest risk first

  /// Rows that are both identifiable and in the top `count` by mean
  /// matched attributes — the tuples to protect first.
  std::vector<size_t> TopIdentifiable(size_t count) const;

  /// Aligned text rendering of the `count` riskiest tuples.
  std::string ToString(size_t count = 10) const;
};

/// Runs the Monte-Carlo tuple-risk analysis: `rounds` synthetic
/// relations generated from `metadata`, scored cell-wise against `real`.
Result<TupleRiskReport> AnalyzeTupleRisk(
    const Relation& real, const MetadataPackage& metadata,
    const TupleRiskOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_TUPLE_RISK_H_
