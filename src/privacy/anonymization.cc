#include "privacy/anonymization.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "data/domain.h"
#include "data/encoded_relation.h"
#include "partition/position_list_index.h"

namespace metaleak {

namespace {

Status CheckQuasiId(const Relation& relation, AttributeSet quasi_id) {
  if (quasi_id.empty()) {
    return Status::Invalid("quasi-identifier must not be empty");
  }
  for (size_t i : quasi_id.ToIndices()) {
    if (i >= relation.num_columns()) {
      return Status::OutOfRange("quasi-identifier attribute out of range");
    }
  }
  return Status::OK();
}

// Generalizes one continuous column into `bins` interval labels.
Result<std::vector<Value>> BinColumn(const Relation& relation, size_t col,
                                     size_t bins) {
  METALEAK_ASSIGN_OR_RETURN(Domain domain, ExtractDomain(relation, col));
  double lo = domain.lo();
  double width = domain.range() / static_cast<double>(bins);
  if (width <= 0.0) width = 1.0;
  std::vector<Value> out;
  out.reserve(relation.num_rows());
  for (const Value& v : relation.column(col)) {
    if (v.is_null() || !v.is_numeric()) {
      out.push_back(Value::Null());
      continue;
    }
    size_t b = static_cast<size_t>((v.AsNumeric() - lo) / width);
    b = std::min(b, bins - 1);
    double b_lo = lo + width * static_cast<double>(b);
    out.push_back(Value::Str("[" + FormatDouble(b_lo, 2) + "," +
                             FormatDouble(b_lo + width, 2) + ")"));
  }
  return out;
}

// Suppresses categorical values occurring fewer than `min_count` times.
// The generalized column is re-typed to string ("*" is the suppression
// label), so every value is rendered via ToString.
std::vector<Value> SuppressRare(const std::vector<Value>& column,
                                size_t min_count) {
  std::unordered_map<Value, size_t> counts;
  for (const Value& v : column) counts[v]++;
  std::vector<Value> out;
  out.reserve(column.size());
  for (const Value& v : column) {
    if (counts[v] < min_count) {
      out.push_back(Value::Str("*"));
    } else if (v.is_null()) {
      out.push_back(Value::Null());
    } else {
      out.push_back(Value::Str(v.ToString()));
    }
  }
  return out;
}

}  // namespace

Result<size_t> MinGroupSize(const Relation& relation,
                            AttributeSet quasi_id) {
  METALEAK_RETURN_NOT_OK(CheckQuasiId(relation, quasi_id));
  if (relation.num_rows() == 0) return 0;
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  PositionListIndex pli =
      PositionListIndex::FromEncoded(encoded, quasi_id.ToIndices());
  // Any stripped singleton is a group of 1.
  if (pli.num_stripped_rows() < relation.num_rows()) return 1;
  size_t min_size = relation.num_rows();
  for (const auto& cluster : pli.clusters()) {
    min_size = std::min(min_size, cluster.size());
  }
  return min_size;
}

Result<bool> IsKAnonymous(const Relation& relation, AttributeSet quasi_id,
                          size_t k) {
  if (k == 0) return Status::Invalid("k must be positive");
  METALEAK_ASSIGN_OR_RETURN(size_t min_size,
                            MinGroupSize(relation, quasi_id));
  if (relation.num_rows() == 0) return true;
  return min_size >= k;
}

Result<AnonymizationResult> Anonymize(const Relation& relation,
                                      AttributeSet quasi_id,
                                      const AnonymizationOptions& options) {
  METALEAK_RETURN_NOT_OK(CheckQuasiId(relation, quasi_id));
  if (options.k == 0) return Status::Invalid("k must be positive");
  if (options.initial_bins == 0) {
    return Status::Invalid("initial_bins must be positive");
  }

  AnonymizationResult result;
  size_t bins = options.initial_bins;

  for (size_t pass = 0; pass <= options.max_passes; ++pass) {
    // Build the generalized view for this pass.
    std::vector<Attribute> attrs = relation.schema().attributes();
    std::vector<std::vector<Value>> columns;
    columns.reserve(relation.num_columns());
    for (size_t c = 0; c < relation.num_columns(); ++c) {
      if (!quasi_id.Contains(c)) {
        columns.push_back(relation.column(c));
        continue;
      }
      if (attrs[c].semantic == SemanticType::kContinuous) {
        METALEAK_ASSIGN_OR_RETURN(std::vector<Value> binned,
                                  BinColumn(relation, c, bins));
        columns.push_back(std::move(binned));
        attrs[c].type = DataType::kString;
        attrs[c].semantic = SemanticType::kCategorical;
      } else {
        // Categorical: suppress values rarer than k (pass-scaled) and
        // re-type the generalized column to string.
        columns.push_back(
            SuppressRare(relation.column(c), options.k * (pass + 1) / 2));
        attrs[c].type = DataType::kString;
      }
    }
    METALEAK_ASSIGN_OR_RETURN(
        Relation generalized,
        Relation::Make(Schema(attrs), std::move(columns)));

    METALEAK_ASSIGN_OR_RETURN(size_t min_group,
                              MinGroupSize(generalized, quasi_id));
    if (min_group >= options.k || pass == options.max_passes) {
      result.passes = pass + 1;
      if (min_group >= options.k) {
        result.relation = std::move(generalized);
        return result;
      }
      // Maximal generalization reached: suppress the violating rows.
      EncodedRelation encoded = EncodedRelation::Encode(generalized);
      PositionListIndex pli = PositionListIndex::FromEncoded(
          encoded, quasi_id.ToIndices());
      std::vector<size_t> group_size(generalized.num_rows(), 1);
      for (const auto& cluster : pli.clusters()) {
        for (size_t row : cluster) group_size[row] = cluster.size();
      }
      std::vector<size_t> keep;
      for (size_t r = 0; r < generalized.num_rows(); ++r) {
        if (group_size[r] >= options.k) {
          keep.push_back(r);
        } else {
          ++result.suppressed_rows;
        }
      }
      result.relation = generalized.SelectRows(keep);
      return result;
    }
    // Widen the bins and retry.
    bins = std::max<size_t>(1, bins / 2);
  }
  return Status::UnknownError("unreachable");
}

}  // namespace metaleak
