// Per-batch leakage deltas: what a row batch changed about the answer to
// "will sharing this metadata leak privacy?".
//
// The incremental service keeps a relation alive across insert/delete
// batches. After each batch it re-derives the snapshot's leakage profile
// (the analytical Section III expected-match model per attribute, plus
// the discovered dependency set) and diffs it against the pre-batch
// profile. The diff is the batch's privacy story: attributes whose
// expected leakage crossed the >= 1 threshold, dependencies the batch
// created or destroyed, and the row-count drift that rescales every
// expectation.
#ifndef METALEAK_PRIVACY_LEAKAGE_DELTA_H_
#define METALEAK_PRIVACY_LEAKAGE_DELTA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"
#include "privacy/risk_estimator.h"

namespace metaleak {

/// One attribute's analytical leakage position (Section III model).
struct AttributeExpectation {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// Non-null cells — the comparisons the expectation ranges over.
  size_t compared = 0;
  /// Expected exact (categorical) or epsilon-ball (continuous) matches
  /// from names + domains alone.
  double expected_random_matches = 0.0;
  /// expected_random_matches >= 1: domain disclosure alone leaks.
  bool domain_leaks = false;
};

/// Snapshot-level leakage profile: the analytical model evaluated over
/// the dictionaries plus the disclosed dependency set.
struct LeakageProfile {
  Schema schema;
  size_t num_rows = 0;
  std::vector<AttributeExpectation> attributes;
  DependencySet dependencies;
  size_t num_conditional_fds = 0;
  /// Batch-independent estimator measures (entropy, conditional entropy
  /// given disclosed dependencies) evaluated over the dictionaries —
  /// ComputeProfileMeasures output, cached with the snapshot and diffed
  /// by DiffLeakageProfiles.
  std::vector<RiskProfileMeasure> risk_measures;
};

/// Evaluates the analytical model straight off the dictionaries — no
/// Monte-Carlo rounds, O(columns) after encoding. `metadata` supplies the
/// disclosed domains and dependencies; `leakage` supplies the continuous
/// epsilon policy (absolute_epsilon / epsilon_fraction), matching the
/// audit's per-attribute expectation exactly.
Result<LeakageProfile> ComputeLeakageProfile(const EncodedRelation& encoded,
                                             const MetadataPackage& metadata,
                                             const LeakageOptions& leakage);

/// One registered measure whose value moved for one attribute between
/// two profiles (or whose presence flipped — a dependency disclosure
/// gained or lost a conditional-entropy bound).
struct MeasureDrift {
  std::string estimator;
  std::string measure;
  size_t attribute = 0;
  RiskMeasureCell before;
  RiskMeasureCell after;
};

/// What changed between two profiles of the same schema.
struct LeakageDelta {
  long long rows_delta = 0;
  /// Parallel to the schema: after - before expected random matches.
  std::vector<double> expected_matches_delta;
  /// Attributes whose domain_leaks flag flipped false -> true this batch.
  std::vector<size_t> newly_leaking;
  /// ... and true -> false.
  std::vector<size_t> no_longer_leaking;
  /// Dependencies present after but not before, and vice versa.
  std::vector<Dependency> dependencies_added;
  std::vector<Dependency> dependencies_removed;
  /// Registered measures that drifted more than 1e-12 in absolute value
  /// (or flipped presence) for some attribute. Measures present in only
  /// one profile are not diffed — a registry change is not a data
  /// change.
  std::vector<MeasureDrift> measure_drifts;

  bool empty() const {
    return rows_delta == 0 && newly_leaking.empty() &&
           no_longer_leaking.empty() && dependencies_added.empty() &&
           dependencies_removed.empty() && measure_drifts.empty();
  }

  /// Human-readable summary, one line per change (empty string when
  /// nothing moved).
  std::string ToString(const Schema& schema) const;
};

/// Diffs `after` against `before`. Fails when the schemas disagree in
/// width (the delta layer never changes the schema).
Result<LeakageDelta> DiffLeakageProfiles(const LeakageProfile& before,
                                         const LeakageProfile& after);

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_LEAKAGE_DELTA_H_
