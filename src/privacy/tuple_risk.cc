#include "privacy/tuple_risk.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "generation/generation_engine.h"
#include "privacy/identifiability.h"

namespace metaleak {

namespace {

// Whether the synthetic cell matches the real cell under the paper's
// per-type semantics.
bool CellMatches(const Value& real, const Value& syn,
                 SemanticType semantic, double epsilon) {
  if (real.is_null()) return false;
  if (semantic == SemanticType::kCategorical) {
    if (real == syn) return true;
    return real.is_numeric() && syn.is_numeric() &&
           real.AsNumeric() == syn.AsNumeric();
  }
  if (!real.is_numeric() || !syn.is_numeric()) return false;
  return std::abs(real.AsNumeric() - syn.AsNumeric()) <= epsilon;
}

}  // namespace

std::vector<size_t> TupleRiskReport::TopIdentifiable(size_t count) const {
  std::vector<size_t> out;
  for (const TupleRisk& t : tuples) {
    if (out.size() >= count) break;
    if (t.identifiable) out.push_back(t.row);
  }
  return out;
}

std::string TupleRiskReport::ToString(size_t count) const {
  TablePrinter printer("Highest-risk tuples");
  printer.SetHeader({"Row", "Mean matched attrs", "Max in a round",
                     ">=50% reconstructed", "Identifiable (Def 2.1)"});
  for (size_t i = 0; i < std::min(count, tuples.size()); ++i) {
    const TupleRisk& t = tuples[i];
    printer.AddRow({std::to_string(t.row),
                    FormatDouble(t.mean_matched_attributes, 3),
                    std::to_string(t.max_matched_attributes),
                    FormatDouble(100.0 * t.half_reconstructed_rate, 1) +
                        "%",
                    t.identifiable ? "yes" : "no"});
  }
  return printer.ToString();
}

Result<TupleRiskReport> AnalyzeTupleRisk(const Relation& real,
                                         const MetadataPackage& metadata,
                                         const TupleRiskOptions& options) {
  if (options.rounds == 0) {
    return Status::Invalid("tuple risk analysis needs at least one round");
  }
  const size_t n = real.num_rows();
  const size_t m = real.num_columns();
  if (n == 0 || m == 0) {
    return Status::Invalid("cannot analyze an empty relation");
  }

  // One dictionary encoding shared by the epsilon extraction below and
  // every per-subset uniqueness scan in the identifiability pass.
  EncodedRelation encoded = EncodedRelation::Encode(real);

  // Per-attribute epsilon for continuous cells.
  std::vector<double> epsilons(m, 0.0);
  for (size_t c = 0; c < m; ++c) {
    if (real.schema().attribute(c).semantic != SemanticType::kContinuous) {
      continue;
    }
    if (options.leakage.absolute_epsilon.has_value()) {
      epsilons[c] = *options.leakage.absolute_epsilon;
    } else {
      Result<Domain> domain = encoded.DomainOf(c);
      epsilons[c] = domain.ok()
                        ? options.leakage.epsilon_fraction * domain->range()
                        : 0.0;
    }
  }
  // Non-null attribute counts per row (the "half reconstructed" base),
  // read column-major off the dense code vectors: code 0 is the reserved
  // NULL slot, so no Value is materialized.
  static_assert(ColumnDictionary::kNullCode == 0,
                "AccumulateNonNull counts codes != 0");
  std::vector<uint32_t> non_null(n, 0);
  for (size_t c = 0; c < m; ++c) {
    AccumulateNonNullCodes(ActiveSimdLevel(), encoded.column_view(c),
                           non_null.data());
  }

  std::vector<double> total_matched(n, 0.0);
  std::vector<size_t> max_matched(n, 0);
  std::vector<size_t> half_rounds(n, 0);

  // Code path: resolve the generation plan and the per-cell leakage
  // tables once, then score every round as a scan over dense codes and
  // doubles — no Relation is materialized. Packages or value patterns
  // the encoded pipeline cannot reproduce fall back to the boxed-Value
  // loop below (this analysis never index-checks schemas itself, so a
  // context build error also just means "use the reference path").
  std::optional<GenerationContext> gen_ctx;
  std::optional<EncodedLeakageContext> leak_ctx;
  {
    Result<GenerationContext> built = GenerationContext::Build(metadata);
    if (built.ok() && built->encodable()) {
      Result<EncodedLeakageContext> leak = EncodedLeakageContext::Build(
          encoded, built->schema(), built->domains(), options.leakage);
      if (leak.ok() && leak->supported()) {
        gen_ctx.emplace(std::move(*built));
        leak_ctx.emplace(std::move(*leak));
      }
    }
  }
  std::vector<EncodedLeakageContext::AttributeView> views;
  if (leak_ctx.has_value()) {
    views.reserve(m);
    for (size_t c = 0; c < m; ++c) views.push_back(leak_ctx->ViewAttribute(c));
  }

  auto score_round = [&](auto&& cell_matched) {
    // Each tuple's match count only touches its own accumulator slots,
    // so the per-tuple scan fans out over the pool.
    ParallelForChunks(0, n, 1024, [&](size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) {
        size_t matched = 0;
        for (size_t c = 0; c < m; ++c) {
          if (cell_matched(r, c)) ++matched;
        }
        total_matched[r] += static_cast<double>(matched);
        max_matched[r] = std::max(max_matched[r], matched);
        if (non_null[r] > 0 && 2 * matched >= non_null[r]) {
          ++half_rounds[r];
        }
      }
    });
  };

  Rng rng(options.seed);
  EncodedBatch batch;
  for (size_t round = 0; round < options.rounds; ++round) {
    Rng round_rng = rng.Fork();
    if (gen_ctx.has_value()) {
      METALEAK_RETURN_NOT_OK(
          GenerateEncoded(*gen_ctx, n, &round_rng, &batch));
      // Column-major scoring through the SIMD accumulation kernels: each
      // chunk counts matched attributes per row one column at a time
      // (exact integer counts, so the result is identical to the
      // row-major cell loop), then finalizes its rows' accumulators.
      const SimdLevel level = ActiveSimdLevel();
      ParallelForChunks(0, n, 1024, [&](size_t lo, size_t hi) {
        const size_t len = hi - lo;
        std::vector<uint32_t> matched(len, 0);
        for (size_t c = 0; c < m; ++c) {
          const EncodedLeakageContext::AttributeView& v = views[c];
          if (v.semantic == SemanticType::kCategorical) {
            if (v.kind == EncodedBatch::ColumnKind::kCodes) {
              AccumulateEqualCodes(level, v.real_codes.Slice(lo, len),
                                   batch.code_view(c).Slice(lo, len),
                                   matched.data());
            } else {
              // NaN real entries (NULL / non-numeric) never compare
              // equal, exactly like the per-cell predicate.
              AccumulateEqualF64(level, v.real_numeric + lo,
                                 batch.reals(c).data() + lo, len,
                                 matched.data());
            }
          } else if (v.kind == EncodedBatch::ColumnKind::kCodes) {
            AccumulateEpsilonMatchCodes(level, v.real_numeric + lo,
                                        batch.code_view(c).Slice(lo, len),
                                        v.code_numeric, v.epsilon,
                                        matched.data());
          } else {
            AccumulateEpsilonMatch(level, v.real_numeric + lo,
                                   batch.reals(c).data() + lo, len,
                                   v.epsilon, matched.data());
          }
        }
        for (size_t i = 0; i < len; ++i) {
          const size_t r = lo + i;
          const size_t row_matched = matched[i];
          total_matched[r] += static_cast<double>(row_matched);
          max_matched[r] = std::max(max_matched[r], row_matched);
          if (non_null[r] > 0 && 2 * row_matched >= non_null[r]) {
            ++half_rounds[r];
          }
        }
      });
      continue;
    }
    METALEAK_ASSIGN_OR_RETURN(
        GenerationOutcome outcome,
        GenerateSynthetic(metadata, n, &round_rng));
    score_round([&](size_t r, size_t c) {
      return CellMatches(real.at(r, c), outcome.relation.at(r, c),
                         real.schema().attribute(c).semantic, epsilons[c]);
    });
  }

  // Per-row identifiability at the configured width: the shared parallel
  // subset sweep (uniqueness is monotone in the subset, so width-k
  // subsets cover all narrower ones).
  METALEAK_ASSIGN_OR_RETURN(
      std::vector<bool> identifiable,
      IdentifiableRows(encoded, options.identifiability_max_width));

  TupleRiskReport report;
  report.tuples.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    TupleRisk t;
    t.row = r;
    t.mean_matched_attributes =
        total_matched[r] / static_cast<double>(options.rounds);
    t.max_matched_attributes = max_matched[r];
    t.half_reconstructed_rate =
        static_cast<double>(half_rounds[r]) /
        static_cast<double>(options.rounds);
    t.identifiable = identifiable[r];
    report.tuples.push_back(t);
  }
  std::stable_sort(report.tuples.begin(), report.tuples.end(),
                   [](const TupleRisk& a, const TupleRisk& b) {
                     return a.mean_matched_attributes >
                            b.mean_matched_attributes;
                   });
  return report;
}

}  // namespace metaleak
