#include "privacy/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/domain.h"
#include "privacy/analytical.h"
#include "privacy/identifiability.h"

namespace metaleak {

Result<AuditResult> RunAudit(const Relation& relation,
                             const AuditOptions& options) {
  if (relation.num_rows() == 0 || relation.num_columns() == 0) {
    return Status::Invalid("cannot audit an empty relation");
  }
  AuditResult result;

  // Encode once: profiling and the identifiability sweep both run on the
  // same dictionary-encoded view.
  EncodedRelation encoded = EncodedRelation::Encode(relation);

  METALEAK_ASSIGN_OR_RETURN(DiscoveryReport report,
                            ProfileRelation(encoded, options.discovery));
  result.metadata = std::move(report.metadata);
  result.discovery_stats = std::move(report.search_stats);

  METALEAK_ASSIGN_OR_RETURN(
      result.identifiable_fraction,
      IdentifiableByAnySubset(encoded, options.identifiability_max_width));

  std::vector<GenerationMethod> methods = {GenerationMethod::kRandom};
  for (GenerationMethod m : options.methods) {
    if (m != GenerationMethod::kRandom) methods.push_back(m);
  }
  // One engine across all methods: the relation is encoded once and each
  // method's rounds stream through the code path (see experiment.h).
  ExperimentEngine engine(relation, result.metadata);
  METALEAK_ASSIGN_OR_RETURN(result.method_results,
                            engine.RunAll(methods, options.experiment));

  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            result.metadata.RequireDomains());
  const MethodResult& random = result.method_results[0];
  for (size_t c = 0; c < relation.num_columns(); ++c) {
    AttributeAudit audit;
    audit.attribute = c;
    audit.name = relation.schema().attribute(c).name;
    audit.semantic = relation.schema().attribute(c).semantic;

    size_t compared = 0;
    for (const Value& v : relation.column(c)) {
      if (!v.is_null()) ++compared;
    }
    if (audit.semantic == SemanticType::kCategorical) {
      audit.expected_random_matches =
          ExpectedRandomCategoricalMatches(compared, domains[c]);
    } else {
      double eps = options.experiment.leakage.absolute_epsilon.has_value()
                       ? *options.experiment.leakage.absolute_epsilon
                       : options.experiment.leakage.epsilon_fraction *
                             domains[c].range();
      audit.expected_random_matches =
          ExpectedRandomContinuousMatches(compared, domains[c], eps);
    }
    audit.domain_leaks = audit.expected_random_matches >= 1.0;

    METALEAK_ASSIGN_OR_RETURN(MethodAttributeResult random_attr,
                              random.ForAttribute(c));
    audit.measured_random_matches = random_attr.mean_matches;
    audit.worst_dependency_matches = random_attr.mean_matches;
    double sigma = std::max(1.0, random_attr.stddev_matches);
    for (size_t m = 1; m < result.method_results.size(); ++m) {
      METALEAK_ASSIGN_OR_RETURN(
          MethodAttributeResult attr,
          result.method_results[m].ForAttribute(c));
      if (!attr.covered) continue;
      audit.worst_dependency_matches =
          std::max(audit.worst_dependency_matches, attr.mean_matches);
      if (attr.mean_matches >
          random_attr.mean_matches + 3.0 * sigma) {
        audit.dependency_adds_leakage = true;
      }
    }
    result.attributes.push_back(std::move(audit));
  }
  return result;
}

std::string AuditResult::ToMarkdown() const {
  std::ostringstream os;
  os << "# MetaLeak privacy audit\n\n";
  os << "Relation: " << metadata.num_rows << " rows, "
     << metadata.schema.num_attributes() << " attributes.\n\n";

  os << "## Identifiability (GDPR Art. 5 / Definition 2.1)\n\n";
  os << FormatDouble(100.0 * identifiable_fraction, 1)
     << "% of tuples are identifiable via small attribute subsets.\n\n";

  os << "## Discovered dependencies ("
     << metadata.dependencies.size() + metadata.conditional_fds.size()
     << ")\n\n";
  for (const Dependency& d : metadata.dependencies) {
    os << "- `" << d.ToString(metadata.schema) << "`\n";
  }
  for (const ConditionalFd& cfd : metadata.conditional_fds) {
    os << "- `" << cfd.ToString(metadata.schema) << "`\n";
  }
  os << '\n';

  if (!discovery_stats.empty()) {
    os << "## Discovery search statistics\n\n";
    TablePrinter stats_table;
    stats_table.SetHeader({"Search", "Nodes", "Pruned", "Validations",
                           "PLI hit rate"});
    for (const ClassSearchStats& s : discovery_stats) {
      stats_table.AddRow(
          {s.search, std::to_string(s.stats.nodes_visited),
           std::to_string(s.stats.candidates_pruned),
           std::to_string(s.stats.validator_invocations),
           FormatDouble(s.stats.PliCacheHitRate(), 3)});
    }
    os << stats_table.ToMarkdown() << '\n';
  }

  os << "## Per-attribute verdicts\n\n";
  TablePrinter table;
  table.SetHeader({"Attribute", "E[random matches]", "Measured random",
                   "Worst dependency method", "Verdict"});
  for (const AttributeAudit& a : attributes) {
    std::string verdict;
    if (a.dependency_adds_leakage) {
      verdict = "DEPENDENCY LEAKS — withhold it";
    } else if (a.domain_leaks) {
      verdict = "domain leaks — withhold domain";
    } else {
      verdict = "safe to share";
    }
    table.AddRow({a.name, FormatDouble(a.expected_random_matches, 3),
                  FormatDouble(a.measured_random_matches, 3),
                  FormatDouble(a.worst_dependency_matches, 3), verdict});
  }
  os << table.ToMarkdown() << '\n';

  os << "## Recommendation\n\n";
  bool any_dep_leak = false;
  bool any_domain_leak = false;
  for (const AttributeAudit& a : attributes) {
    any_dep_leak |= a.dependency_adds_leakage;
    any_domain_leak |= a.domain_leaks;
  }
  if (any_dep_leak) {
    os << "Some dependency metadata leaks beyond the random baseline "
          "(typically constant patterns or skew-revealing structure): "
          "review the flagged attributes before sharing dependencies.\n";
  } else if (any_domain_leak) {
    os << "Dependencies add no leakage, but domain disclosure alone "
          "already implies expected leakage on some attributes: share "
          "attribute names and dependencies, withhold domains where "
          "flagged (the paper's Section VI policy).\n";
  } else {
    os << "No expected leakage at the audited disclosure level.\n";
  }
  return os.str();
}

}  // namespace metaleak
