#include "privacy/audit.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/simd.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/domain.h"
#include "privacy/analytical.h"
#include "privacy/identifiability.h"
#include "privacy/risk_estimator.h"

namespace metaleak {

Result<AuditResult> RunAudit(const Relation& relation,
                             const AuditOptions& options) {
  if (relation.num_rows() == 0 || relation.num_columns() == 0) {
    return Status::Invalid("cannot audit an empty relation");
  }
  // Encode once: profiling, the identifiability sweep, and the experiment
  // engine all run on the same dictionary-encoded view, sharing one
  // partition cache.
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  PliCache cache(&encoded);
  METALEAK_ASSIGN_OR_RETURN(DiscoveryReport report,
                            ProfileRelation(&cache, options.discovery));
  return RunAuditProfiled(cache, report, options);
}

Result<AuditResult> RunAuditProfiled(PliCache& cache,
                                     const DiscoveryReport& profile,
                                     const AuditOptions& options) {
  const EncodedRelation& encoded = cache.encoded();
  if (encoded.num_rows() == 0 || encoded.num_columns() == 0) {
    return Status::Invalid("cannot audit an empty relation");
  }
  if (encoded.source() == nullptr) {
    return Status::Invalid(
        "profiled audit needs an encoding with a live source relation");
  }
  const uint64_t pli_hits_before = cache.hits();
  const uint64_t pli_misses_before = cache.misses();

  AuditResult result;
  result.metadata = profile.metadata;
  result.discovery_stats = profile.search_stats;

  METALEAK_ASSIGN_OR_RETURN(
      result.identifiable_fraction,
      IdentifiableByAnySubset(cache, options.identifiability_max_width));

  std::vector<GenerationMethod> methods = {GenerationMethod::kRandom};
  for (GenerationMethod m : options.methods) {
    if (m != GenerationMethod::kRandom) methods.push_back(m);
  }
  // One engine across all methods, borrowing the snapshot's encoding:
  // each method's rounds stream through the code path (see experiment.h).
  // The audit runs every shipped risk estimator unless the caller pinned
  // a registry; estimators draw no randomness, so the match/MSE columns
  // (and every verdict below) are unchanged by the wider registry.
  ExperimentConfig experiment = options.experiment;
  if (experiment.estimators == nullptr) {
    experiment.estimators = &RiskEstimatorRegistry::All();
  }
  ExperimentEngine engine(encoded, result.metadata);
  METALEAK_ASSIGN_OR_RETURN(result.method_results,
                            engine.RunAll(methods, experiment));

  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            result.metadata.RequireDomains());
  const MethodResult& random = result.method_results[0];
  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    AttributeAudit audit;
    audit.attribute = c;
    audit.name = encoded.schema().attribute(c).name;
    audit.semantic = encoded.schema().attribute(c).semantic;

    // Non-null cell count, straight off the dictionary: code 0 is NULL.
    size_t compared =
        encoded.num_rows() - encoded.dictionary(c).count(0);
    if (audit.semantic == SemanticType::kCategorical) {
      audit.expected_random_matches =
          ExpectedRandomCategoricalMatches(compared, domains[c]);
    } else {
      double eps = options.experiment.leakage.absolute_epsilon.has_value()
                       ? *options.experiment.leakage.absolute_epsilon
                       : options.experiment.leakage.epsilon_fraction *
                             domains[c].range();
      audit.expected_random_matches =
          ExpectedRandomContinuousMatches(compared, domains[c], eps);
    }
    audit.domain_leaks = audit.expected_random_matches >= 1.0;

    METALEAK_ASSIGN_OR_RETURN(MethodAttributeResult random_attr,
                              random.ForAttribute(c));
    audit.measured_random_matches = random_attr.mean_matches;
    audit.worst_dependency_matches = random_attr.mean_matches;
    double sigma = std::max(1.0, random_attr.stddev_matches);
    for (size_t m = 1; m < result.method_results.size(); ++m) {
      METALEAK_ASSIGN_OR_RETURN(
          MethodAttributeResult attr,
          result.method_results[m].ForAttribute(c));
      if (!attr.covered) continue;
      audit.worst_dependency_matches =
          std::max(audit.worst_dependency_matches, attr.mean_matches);
      if (attr.mean_matches >
          random_attr.mean_matches + 3.0 * sigma) {
        audit.dependency_adds_leakage = true;
      }
    }
    result.attributes.push_back(std::move(audit));
  }

  AuditCacheStats cache_stats;
  cache_stats.pli_hits = cache.hits() - pli_hits_before;
  cache_stats.pli_misses = cache.misses() - pli_misses_before;
  result.cache_stats = cache_stats;
  return result;
}

std::string AuditResult::ToMarkdown() const {
  std::ostringstream os;
  os << "# MetaLeak privacy audit\n\n";
  os << "Relation: " << metadata.num_rows << " rows, "
     << metadata.schema.num_attributes() << " attributes.\n\n";

  os << "## Identifiability (GDPR Art. 5 / Definition 2.1)\n\n";
  os << FormatDouble(100.0 * identifiable_fraction, 1)
     << "% of tuples are identifiable via small attribute subsets.\n\n";

  os << "## Discovered dependencies ("
     << metadata.dependencies.size() + metadata.conditional_fds.size()
     << ")\n\n";
  for (const Dependency& d : metadata.dependencies) {
    os << "- `" << d.ToString(metadata.schema) << "`\n";
  }
  for (const ConditionalFd& cfd : metadata.conditional_fds) {
    os << "- `" << cfd.ToString(metadata.schema) << "`\n";
  }
  os << '\n';

  if (!discovery_stats.empty()) {
    os << "## Discovery search statistics\n\n";
    TablePrinter stats_table;
    stats_table.SetHeader({"Search", "Nodes", "Pruned", "Validations",
                           "Reused", "PLI hit rate"});
    for (const ClassSearchStats& s : discovery_stats) {
      stats_table.AddRow(
          {s.search, std::to_string(s.stats.nodes_visited),
           std::to_string(s.stats.candidates_pruned),
           std::to_string(s.stats.validator_invocations),
           std::to_string(s.stats.verdicts_reused),
           FormatDouble(s.stats.PliCacheHitRate(), 3)});
    }
    os << stats_table.ToMarkdown() << '\n';
  }

  os << "## Kernel dispatch\n\n";
  os << "Inner scans ran with `" << SimdLevelName(ActiveSimdLevel())
     << "` kernels (host supports `" << SimdLevelName(SupportedSimdLevel())
     << "`, `METALEAK_SIMD=" << SimdEnvSetting()
     << "`). All levels produce byte-identical results.\n\n";

  if (cache_stats.has_value()) {
    os << "## Cache observability\n\n";
    TablePrinter cache_table;
    cache_table.SetHeader({"Counter", "Value"});
    cache_table.AddRow({"PLI cache hits (this audit)",
                        std::to_string(cache_stats->pli_hits)});
    cache_table.AddRow({"PLI cache misses (this audit)",
                        std::to_string(cache_stats->pli_misses)});
    cache_table.AddRow(
        {"PLI cache hit rate", FormatDouble(cache_stats->PliHitRate(), 3)});
    cache_table.AddRow({"Snapshot cache hits",
                        std::to_string(cache_stats->snapshot_hits)});
    cache_table.AddRow({"Snapshot cache misses",
                        std::to_string(cache_stats->snapshot_misses)});
    cache_table.AddRow({"Snapshot cache evictions",
                        std::to_string(cache_stats->snapshot_evictions)});
    os << cache_table.ToMarkdown() << '\n';
  }

  // Beyond-match-rate measures from the estimator registry, present when
  // some method ran on the encoded path with the info-theoretic
  // estimator registered. Entropy columns are batch-independent; the MI
  // and NN-linkage columns take the worst (largest) mean across methods.
  const std::string info_name = InfoTheoreticEstimator::Instance().name();
  const std::string nn_name = NnLinkageEstimator::Instance().name();
  const MethodResult* info_src = nullptr;
  for (const MethodResult& m : method_results) {
    Result<RiskMeasureStats> e = m.ForMeasure(info_name, "entropy_bits");
    if (e.ok() && e->active) {
      info_src = &m;
      break;
    }
  }
  if (info_src != nullptr) {
    std::vector<std::optional<double>> max_mi(attributes.size());
    std::vector<std::optional<double>> nn_eps(attributes.size());
    std::vector<std::optional<double>> nn_top1(attributes.size());
    auto fold_max = [&](const Result<RiskMeasureStats>& stats,
                       std::vector<std::optional<double>>* into) {
      if (!stats.ok() || !stats->active) return;
      for (size_t c = 0; c < into->size() && c < stats->mean.size(); ++c) {
        if (stats->rounds[c] == 0) continue;
        std::optional<double>& cell = (*into)[c];
        if (!cell.has_value() || stats->mean[c] > *cell) {
          cell = stats->mean[c];
        }
      }
    };
    for (const MethodResult& m : method_results) {
      fold_max(m.ForMeasure(info_name, "mi_bits"), &max_mi);
      fold_max(m.ForMeasure(nn_name, "nn_eps_matches"), &nn_eps);
      fold_max(m.ForMeasure(nn_name, "nn_top1_hits"), &nn_top1);
    }
    Result<RiskMeasureStats> entropy =
        info_src->ForMeasure(info_name, "entropy_bits");
    Result<RiskMeasureStats> cond =
        info_src->ForMeasure(info_name, "cond_entropy_bits");
    auto fmt = [](const std::optional<double>& v) {
      return v.has_value() ? FormatDouble(*v, 3) : std::string("-");
    };
    os << "## Risk estimators\n\n";
    TablePrinter risk_table;
    risk_table.SetHeader({"Attribute", "H (bits)", "min H given dep (bits)",
                          "Max MI (bits)", "NN eps links", "NN top-1"});
    for (size_t c = 0; c < attributes.size(); ++c) {
      std::optional<double> h, h_cond;
      if (entropy.ok() && c < entropy->mean.size() &&
          entropy->rounds[c] > 0) {
        h = entropy->mean[c];
      }
      if (cond.ok() && c < cond->mean.size() && cond->rounds[c] > 0) {
        h_cond = cond->mean[c];
      }
      risk_table.AddRow({attributes[c].name, fmt(h), fmt(h_cond),
                         fmt(max_mi[c]), fmt(nn_eps[c]), fmt(nn_top1[c])});
    }
    os << risk_table.ToMarkdown() << '\n';
  }

  os << "## Per-attribute verdicts\n\n";
  TablePrinter table;
  table.SetHeader({"Attribute", "E[random matches]", "Measured random",
                   "Worst dependency method", "Verdict"});
  for (const AttributeAudit& a : attributes) {
    std::string verdict;
    if (a.dependency_adds_leakage) {
      verdict = "DEPENDENCY LEAKS — withhold it";
    } else if (a.domain_leaks) {
      verdict = "domain leaks — withhold domain";
    } else {
      verdict = "safe to share";
    }
    table.AddRow({a.name, FormatDouble(a.expected_random_matches, 3),
                  FormatDouble(a.measured_random_matches, 3),
                  FormatDouble(a.worst_dependency_matches, 3), verdict});
  }
  os << table.ToMarkdown() << '\n';

  os << "## Recommendation\n\n";
  bool any_dep_leak = false;
  bool any_domain_leak = false;
  for (const AttributeAudit& a : attributes) {
    any_dep_leak |= a.dependency_adds_leakage;
    any_domain_leak |= a.domain_leaks;
  }
  if (any_dep_leak) {
    os << "Some dependency metadata leaks beyond the random baseline "
          "(typically constant patterns or skew-revealing structure): "
          "review the flagged attributes before sharing dependencies.\n";
  } else if (any_domain_leak) {
    os << "Dependencies add no leakage, but domain disclosure alone "
          "already implies expected leakage on some attributes: share "
          "attribute names and dependencies, withhold domains where "
          "flagged (the paper's Section VI policy).\n";
  } else {
    os << "No expected leakage at the audited disclosure level.\n";
  }
  return os.str();
}

}  // namespace metaleak
