#include "privacy/identifiability.h"

#include <vector>

#include "partition/position_list_index.h"

namespace metaleak {

namespace {

Status CheckAttrs(const EncodedRelation& relation, AttributeSet attrs) {
  for (size_t i : attrs.ToIndices()) {
    if (i >= relation.num_columns()) {
      return Status::OutOfRange("attribute index out of range");
    }
  }
  return Status::OK();
}

// Enumerates all subsets of {0..m-1} of size exactly k, invoking f(set).
template <typename F>
void ForEachSubset(size_t m, size_t k, F&& f) {
  if (k == 0 || k > m) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    f(AttributeSet::Of(idx));
    // Advance to the next combination in lexicographic order.
    size_t i = k;
    while (i > 0 && idx[i - 1] == m - k + (i - 1)) --i;
    if (i == 0) return;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

Result<std::vector<bool>> UniqueRows(const Relation& relation,
                                     AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return UniqueRows(encoded, attrs);
}

Result<std::vector<bool>> UniqueRows(const EncodedRelation& relation,
                                     AttributeSet attrs) {
  METALEAK_RETURN_NOT_OK(CheckAttrs(relation, attrs));
  // Stripped partitions list exactly the non-unique rows.
  PositionListIndex pli =
      PositionListIndex::FromEncoded(relation, attrs.ToIndices());
  std::vector<bool> unique(relation.num_rows(), true);
  for (const auto& cluster : pli.clusters()) {
    for (size_t row : cluster) unique[row] = false;
  }
  return unique;
}

Result<double> IdentifiableFraction(const Relation& relation,
                                    AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableFraction(encoded, attrs);
}

Result<double> IdentifiableFraction(const EncodedRelation& relation,
                                    AttributeSet attrs) {
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> unique,
                            UniqueRows(relation, attrs));
  if (unique.empty()) return 0.0;
  size_t count = 0;
  for (bool u : unique) count += u ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(unique.size());
}

Result<double> IdentifiableByAnySubset(const Relation& relation,
                                       size_t max_subset_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableByAnySubset(encoded, max_subset_size);
}

Result<double> IdentifiableByAnySubset(const EncodedRelation& relation,
                                       size_t max_subset_size) {
  size_t m = relation.num_columns();
  if (m == 0 || relation.num_rows() == 0) return 0.0;
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  // Adding attributes refines the partition, so uniqueness under A is
  // preserved under every superset of A. Checking only the subsets of
  // size exactly min(max_subset_size, m) therefore covers all smaller
  // subsets too.
  size_t k = std::min(max_subset_size, m);
  std::vector<bool> identifiable(relation.num_rows(), false);
  Status status = Status::OK();
  ForEachSubset(m, k, [&](AttributeSet attrs) {
    if (!status.ok()) return;
    Result<std::vector<bool>> unique = UniqueRows(relation, attrs);
    if (!unique.ok()) {
      status = unique.status();
      return;
    }
    for (size_t r = 0; r < identifiable.size(); ++r) {
      if ((*unique)[r]) identifiable[r] = true;
    }
  });
  METALEAK_RETURN_NOT_OK(status);
  size_t count = 0;
  for (bool b : identifiable) count += b ? 1 : 0;
  return static_cast<double>(count) /
         static_cast<double>(identifiable.size());
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const Relation& relation, size_t max_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverUniqueColumnCombinations(encoded, max_size);
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const EncodedRelation& relation, size_t max_size) {
  size_t m = relation.num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  std::vector<AttributeSet> uccs;
  auto covered_by_known = [&](AttributeSet attrs) {
    for (AttributeSet known : uccs) {
      if (attrs.ContainsAll(known)) return true;
    }
    return false;
  };
  for (size_t k = 1; k <= std::min(max_size, m); ++k) {
    Status status = Status::OK();
    ForEachSubset(m, k, [&](AttributeSet attrs) {
      if (!status.ok()) return;
      if (covered_by_known(attrs)) return;  // not minimal
      PositionListIndex pli =
          PositionListIndex::FromEncoded(relation, attrs.ToIndices());
      if (pli.num_clusters() == 0) {
        uccs.push_back(attrs);  // every row unique
      }
    });
    METALEAK_RETURN_NOT_OK(status);
  }
  return uccs;
}

}  // namespace metaleak
