#include "privacy/identifiability.h"

#include <algorithm>
#include <vector>

#include "common/parallel.h"
#include "partition/position_list_index.h"

namespace metaleak {

namespace {

Status CheckAttrs(const EncodedRelation& relation, AttributeSet attrs) {
  for (size_t i : attrs.ToIndices()) {
    if (i >= relation.num_columns()) {
      return Status::OutOfRange("attribute index out of range");
    }
  }
  return Status::OK();
}

// Enumerates all subsets of {0..m-1} of size exactly k, invoking f(set).
template <typename F>
void ForEachSubset(size_t m, size_t k, F&& f) {
  if (k == 0 || k > m) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    f(AttributeSet::Of(idx));
    // Advance to the next combination in lexicographic order.
    size_t i = k;
    while (i > 0 && idx[i - 1] == m - k + (i - 1)) --i;
    if (i == 0) return;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

// All size-k subsets of {0..m-1} in lexicographic order, materialized so
// the per-subset scans can fan out over the pool.
std::vector<AttributeSet> SubsetsOfSize(size_t m, size_t k) {
  std::vector<AttributeSet> out;
  ForEachSubset(m, k, [&](AttributeSet attrs) { out.push_back(attrs); });
  return out;
}

}  // namespace

Result<std::vector<bool>> UniqueRows(const Relation& relation,
                                     AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return UniqueRows(encoded, attrs);
}

Result<std::vector<bool>> UniqueRows(const EncodedRelation& relation,
                                     AttributeSet attrs) {
  METALEAK_RETURN_NOT_OK(CheckAttrs(relation, attrs));
  // Stripped partitions list exactly the non-unique rows.
  PositionListIndex pli =
      PositionListIndex::FromEncoded(relation, attrs.ToIndices());
  std::vector<bool> unique(relation.num_rows(), true);
  for (const auto& cluster : pli.clusters()) {
    for (size_t row : cluster) unique[row] = false;
  }
  return unique;
}

Result<double> IdentifiableFraction(const Relation& relation,
                                    AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableFraction(encoded, attrs);
}

Result<double> IdentifiableFraction(const EncodedRelation& relation,
                                    AttributeSet attrs) {
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> unique,
                            UniqueRows(relation, attrs));
  if (unique.empty()) return 0.0;
  size_t count = 0;
  for (bool u : unique) count += u ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(unique.size());
}

Result<double> IdentifiableByAnySubset(const Relation& relation,
                                       size_t max_subset_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableByAnySubset(encoded, max_subset_size);
}

Result<std::vector<bool>> IdentifiableRows(const EncodedRelation& relation,
                                           size_t width) {
  const size_t m = relation.num_columns();
  const size_t n = relation.num_rows();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  std::vector<bool> identifiable(n, false);
  if (m == 0 || n == 0 || width == 0) return identifiable;

  // Adding attributes refines the partition, so uniqueness under A is
  // preserved under every superset of A. Checking only the subsets of
  // size exactly min(width, m) therefore covers all smaller subsets too.
  const std::vector<AttributeSet> subsets =
      SubsetsOfSize(m, std::min(width, m));

  // Chunk the subset sweep; each chunk ORs its subsets' uniqueness flags
  // into a private bitmap, and the chunk bitmaps are OR-merged. OR is
  // insensitive to both chunking and merge order, so the result matches
  // the serial sweep at any thread count. Grain depends on the subset
  // count only.
  struct Partial {
    Status status;
    std::vector<char> bits;
  };
  const size_t grain = std::max<size_t>(1, subsets.size() / 256);
  Partial merged = ParallelReduce<Partial>(
      0, subsets.size(), grain, Partial{Status::OK(), {}},
      [&](size_t lo, size_t hi) {
        Partial p;
        p.bits.assign(n, 0);
        for (size_t s = lo; s < hi; ++s) {
          Result<std::vector<bool>> unique = UniqueRows(relation, subsets[s]);
          if (!unique.ok()) {
            p.status = unique.status();
            return p;
          }
          for (size_t r = 0; r < n; ++r) {
            if ((*unique)[r]) p.bits[r] = 1;
          }
        }
        return p;
      },
      [n](Partial acc, Partial chunk) {
        if (acc.bits.empty()) acc.bits.assign(n, 0);
        if (acc.status.ok() && !chunk.status.ok()) {
          acc.status = chunk.status;
        }
        for (size_t r = 0; r < chunk.bits.size(); ++r) {
          if (chunk.bits[r]) acc.bits[r] = 1;
        }
        return acc;
      });
  METALEAK_RETURN_NOT_OK(merged.status);
  for (size_t r = 0; r < n; ++r) {
    if (merged.bits[r]) identifiable[r] = true;
  }
  return identifiable;
}

Result<double> IdentifiableByAnySubset(const EncodedRelation& relation,
                                       size_t max_subset_size) {
  size_t m = relation.num_columns();
  if (m == 0 || relation.num_rows() == 0) return 0.0;
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> identifiable,
                            IdentifiableRows(relation, max_subset_size));
  size_t count = 0;
  for (bool b : identifiable) count += b ? 1 : 0;
  return static_cast<double>(count) /
         static_cast<double>(identifiable.size());
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const Relation& relation, size_t max_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverUniqueColumnCombinations(encoded, max_size);
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const EncodedRelation& relation, size_t max_size) {
  size_t m = relation.num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  std::vector<AttributeSet> uccs;
  auto covered_by_known = [&](AttributeSet attrs) {
    for (AttributeSet known : uccs) {
      if (attrs.ContainsAll(known)) return true;
    }
    return false;
  };
  for (size_t k = 1; k <= std::min(max_size, m); ++k) {
    // Minimality only filters against smaller (previous-level) UCCs —
    // equal-size subsets cannot contain one another — so the level's
    // survivors can be checked concurrently and appended in lexicographic
    // order afterwards.
    std::vector<AttributeSet> candidates;
    ForEachSubset(m, k, [&](AttributeSet attrs) {
      if (!covered_by_known(attrs)) candidates.push_back(attrs);
    });
    std::vector<char> is_ucc(candidates.size(), 0);
    ParallelFor(0, candidates.size(), 1, [&](size_t i) {
      PositionListIndex pli = PositionListIndex::FromEncoded(
          relation, candidates[i].ToIndices());
      is_ucc[i] = pli.num_clusters() == 0;  // every row unique
    });
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (is_ucc[i]) uccs.push_back(candidates[i]);
    }
  }
  return uccs;
}

}  // namespace metaleak
