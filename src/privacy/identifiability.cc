#include "privacy/identifiability.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/parallel.h"
#include "common/simd.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"

namespace metaleak {

namespace {

Status CheckAttrs(const EncodedRelation& relation, AttributeSet attrs) {
  for (size_t i : attrs.ToIndices()) {
    if (i >= relation.num_columns()) {
      return Status::OutOfRange("attribute index out of range");
    }
  }
  return Status::OK();
}

// Enumerates all subsets of {0..m-1} of size exactly k, invoking f(set).
template <typename F>
void ForEachSubset(size_t m, size_t k, F&& f) {
  if (k == 0 || k > m) return;
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    f(AttributeSet::Of(idx));
    // Advance to the next combination in lexicographic order.
    size_t i = k;
    while (i > 0 && idx[i - 1] == m - k + (i - 1)) --i;
    if (i == 0) return;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

// All size-k subsets of {0..m-1} in lexicographic order, materialized so
// the per-subset scans can fan out over the pool.
std::vector<AttributeSet> SubsetsOfSize(size_t m, size_t k) {
  std::vector<AttributeSet> out;
  ForEachSubset(m, k, [&](AttributeSet attrs) { out.push_back(attrs); });
  return out;
}

// ---------------------------------------------------------------------
// Width-2 counting sweep.
//
// A row is unique under pair (a, b) iff its (code_a, code_b) combination
// occurs exactly once, so a Ka x Kb u32 count table answers a pair
// directly: one counting pass, one marking pass, no PLI intersection and
// no probe-table gathers. Pairs whose table would outgrow the budget
// below (high-cardinality dictionaries) fall back to the cached-PLI
// subset path; both paths compute the same exact per-row predicate, so
// the OR-merge is bit-identical to running everything through either.

// Per-pair count-table budget: 2^18 u32 entries = 1 MiB, small enough
// that the counting pass's random increments stay cache-resident.
constexpr size_t kPairTableMaxEntries = size_t{1} << 18;

// Row-tile length for the counting sweep. Pairs sharing a left column
// are processed group-wise with the row loop tiled, so one tile of the
// shared left column (and each right column) is streamed through L2 once
// per group rather than once per pair.
constexpr size_t kSweepRowTile = size_t{1} << 15;

// Marks rows unique under some pair of `pairs` (each (a, b), a < b,
// table size within budget) into a packed bitmap. Exact integer
// counting + OR accumulation: thread-count independent.
std::vector<uint64_t> CountingPairSweep(
    const EncodedRelation& relation,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  const size_t n = relation.num_rows();
  const size_t words = BitsetWords(n);

  // Group pairs by left attribute so each group's tile walk shares the
  // left column's slice across every right column.
  struct PairGroup {
    size_t left = 0;
    std::vector<size_t> rights;
  };
  std::vector<PairGroup> groups;
  for (const auto& [a, b] : pairs) {
    if (groups.empty() || groups.back().left != a) {
      groups.push_back(PairGroup{a, {}});
    }
    groups.back().rights.push_back(b);
  }

  std::vector<uint64_t> merged = ParallelReduce<std::vector<uint64_t>>(
      0, groups.size(), 1, std::vector<uint64_t>{},
      [&](size_t lo, size_t hi) {
        std::vector<uint64_t> bits(words, 0);
        std::vector<std::vector<uint32_t>> tables;
        for (size_t g = lo; g < hi; ++g) {
          const PairGroup& group = groups[g];
          const CodeColumnView left = relation.column_view(group.left);
          const size_t num_rights = group.rights.size();
          std::vector<size_t> kb(num_rights);
          tables.resize(num_rights);
          for (size_t j = 0; j < num_rights; ++j) {
            kb[j] = relation.dictionary(group.rights[j]).num_codes();
            const size_t ka = relation.dictionary(group.left).num_codes();
            tables[j].assign(ka * kb[j], 0);
          }
          // Counting pass, tiled: each row tile of the left column is
          // reused across every pair in the group while hot.
          for (size_t row0 = 0; row0 < n; row0 += kSweepRowTile) {
            const size_t len = std::min(kSweepRowTile, n - row0);
            const CodeColumnView lslice = left.Slice(row0, len);
            for (size_t j = 0; j < num_rights; ++j) {
              const CodeColumnView rslice =
                  relation.column_view(group.rights[j]).Slice(row0, len);
              uint32_t* table = tables[j].data();
              const size_t stride = kb[j];
              lslice.With([&](const auto* lp) {
                rslice.With([&](const auto* rp) {
                  for (size_t r = 0; r < len; ++r) {
                    ++table[static_cast<size_t>(lp[r]) * stride + rp[r]];
                  }
                });
              });
            }
          }
          // Marking pass, same tile walk: count == 1 means the row's
          // pair projection is unique.
          for (size_t row0 = 0; row0 < n; row0 += kSweepRowTile) {
            const size_t len = std::min(kSweepRowTile, n - row0);
            const CodeColumnView lslice = left.Slice(row0, len);
            for (size_t j = 0; j < num_rights; ++j) {
              const CodeColumnView rslice =
                  relation.column_view(group.rights[j]).Slice(row0, len);
              const uint32_t* table = tables[j].data();
              const size_t stride = kb[j];
              lslice.With([&](const auto* lp) {
                rslice.With([&](const auto* rp) {
                  for (size_t r = 0; r < len; ++r) {
                    if (table[static_cast<size_t>(lp[r]) * stride + rp[r]] ==
                        1) {
                      const size_t row = row0 + r;
                      bits[row >> 6] |= uint64_t{1} << (row & 63);
                    }
                  }
                });
              });
            }
          }
        }
        return bits;
      },
      [words](std::vector<uint64_t> acc, std::vector<uint64_t> chunk) {
        if (acc.size() < words) acc.resize(words, 0);
        if (chunk.size() < words) chunk.resize(words, 0);
        BitsetOrInto(acc.data(), chunk.data(), words);
        return acc;
      });
  if (merged.size() < words) merged.resize(words, 0);
  return merged;
}

// Width-2 sweep: counting tables for in-budget pairs, cached-PLI subset
// sweep for the rest, OR-merged.
Result<std::vector<bool>> IdentifiableRowsWidth2(PliCache& cache) {
  const EncodedRelation& relation = cache.encoded();
  const size_t m = relation.num_columns();
  const size_t n = relation.num_rows();
  std::vector<std::pair<size_t, size_t>> counted;
  std::vector<AttributeSet> fallback;
  for (size_t a = 0; a + 1 < m; ++a) {
    const size_t ka = relation.dictionary(a).num_codes();
    for (size_t b = a + 1; b < m; ++b) {
      const size_t kbc = relation.dictionary(b).num_codes();
      if (ka * kbc <= kPairTableMaxEntries) {
        counted.emplace_back(a, b);
      } else {
        fallback.push_back(AttributeSet::Of(std::vector<size_t>{a, b}));
      }
    }
  }
  std::vector<bool> identifiable(n, false);
  if (!fallback.empty()) {
    METALEAK_ASSIGN_OR_RETURN(identifiable,
                              IdentifiableRowsForSubsets(cache, fallback));
  }
  if (!counted.empty() && n > 0) {
    const std::vector<uint64_t> bits = CountingPairSweep(relation, counted);
    BitsetForEach(bits.data(), bits.size(),
                  [&](size_t row) { identifiable[row] = true; });
  }
  return identifiable;
}

}  // namespace

Result<std::vector<bool>> UniqueRows(const Relation& relation,
                                     AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return UniqueRows(encoded, attrs);
}

Result<std::vector<bool>> UniqueRows(const EncodedRelation& relation,
                                     AttributeSet attrs) {
  METALEAK_RETURN_NOT_OK(CheckAttrs(relation, attrs));
  // Stripped partitions list exactly the non-unique rows.
  PositionListIndex pli =
      PositionListIndex::FromEncoded(relation, attrs.ToIndices());
  std::vector<bool> unique(relation.num_rows(), true);
  for (const auto& cluster : pli.clusters()) {
    for (size_t row : cluster) unique[row] = false;
  }
  return unique;
}

Result<double> IdentifiableFraction(const Relation& relation,
                                    AttributeSet attrs) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableFraction(encoded, attrs);
}

Result<double> IdentifiableFraction(const EncodedRelation& relation,
                                    AttributeSet attrs) {
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> unique,
                            UniqueRows(relation, attrs));
  if (unique.empty()) return 0.0;
  size_t count = 0;
  for (bool u : unique) count += u ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(unique.size());
}

Result<double> IdentifiableByAnySubset(const Relation& relation,
                                       size_t max_subset_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return IdentifiableByAnySubset(encoded, max_subset_size);
}

Result<std::vector<bool>> IdentifiableRowsForSubsets(
    PliCache& cache, const std::vector<AttributeSet>& subsets) {
  const EncodedRelation& relation = cache.encoded();
  const size_t n = relation.num_rows();
  std::vector<bool> identifiable(n, false);
  if (n == 0 || subsets.empty()) return identifiable;

  // Chunk the subset sweep; each chunk ORs its subsets' uniqueness flags
  // into a private bitmap, and the chunk bitmaps are OR-merged. OR is
  // insensitive to both chunking and merge order, so the result matches
  // the serial sweep at any thread count. Grain depends on the subset
  // count only. Bitmaps are packed 64 rows to a word, so the per-subset
  // complement-and-OR and the chunk merges each touch n/64 words instead
  // of n bytes.
  struct Partial {
    Status status;
    std::vector<uint64_t> bits;
  };
  const size_t words = BitsetWords(n);
  const uint64_t tail_mask = BitsetTailMask(n);
  const size_t grain = std::max<size_t>(1, subsets.size() / 256);
  Partial merged = ParallelReduce<Partial>(
      0, subsets.size(), grain, Partial{Status::OK(), {}},
      [&](size_t lo, size_t hi) {
        Partial p;
        std::vector<uint64_t> in_cluster;
        for (size_t s = lo; s < hi; ++s) {
          Status status = CheckAttrs(relation, subsets[s]);
          if (!status.ok()) {
            // Bail before touching the bitmap: an erroring chunk may
            // return bits shorter than `words` (possibly empty).
            p.status = std::move(status);
            return p;
          }
          // Cached extension: pli(prefix) ∩ pli(last attribute), built
          // once per subset across the whole process, not per call.
          const PositionListIndex* pli = cache.Get(subsets[s]);
          if (pli->num_stripped_rows() == n) continue;  // no unique rows
          if (p.bits.empty()) p.bits.assign(words, 0);
          if (pli->num_clusters() == 0) {
            // Every row unique under this subset.
            std::fill(p.bits.begin(), p.bits.end(), ~uint64_t{0});
            p.bits[words - 1] &= tail_mask;
            continue;
          }
          // Unique rows = rows absent from every stripped cluster.
          in_cluster.assign(words, 0);
          for (const auto cl : pli->clusters()) {
            for (size_t row : cl) {
              in_cluster[row >> 6] |= uint64_t{1} << (row & 63);
            }
          }
          BitsetOrNotInto(p.bits.data(), in_cluster.data(), words);
          p.bits[words - 1] &= tail_mask;
        }
        return p;
      },
      [words](Partial acc, Partial chunk) {
        // Either side can carry short (or empty) bits: the identity
        // accumulator, a chunk that errored out early, or a chunk whose
        // subsets had no unique rows. Normalize both to `words` before
        // OR-merging.
        if (acc.bits.size() < words) acc.bits.resize(words, 0);
        if (chunk.bits.size() < words) chunk.bits.resize(words, 0);
        if (acc.status.ok() && !chunk.status.ok()) {
          acc.status = chunk.status;
        }
        BitsetOrInto(acc.bits.data(), chunk.bits.data(), words);
        return acc;
      });
  METALEAK_RETURN_NOT_OK(merged.status);
  if (!merged.bits.empty()) {
    BitsetForEach(merged.bits.data(), merged.bits.size(),
                  [&](size_t row) { identifiable[row] = true; });
  }
  return identifiable;
}

Result<std::vector<bool>> IdentifiableRows(PliCache& cache, size_t width) {
  const size_t m = cache.encoded().num_columns();
  const size_t n = cache.encoded().num_rows();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  if (m == 0 || n == 0 || width == 0) {
    return std::vector<bool>(n, false);
  }
  // Adding attributes refines the partition, so uniqueness under A is
  // preserved under every superset of A. Checking only the subsets of
  // size exactly min(width, m) therefore covers all smaller subsets too.
  const size_t k = std::min(width, m);
  if (k == 2) {
    // The dominant sweep width takes the direct counting path (see
    // CountingPairSweep); pairs over budget still go through the cache.
    return IdentifiableRowsWidth2(cache);
  }
  return IdentifiableRowsForSubsets(cache, SubsetsOfSize(m, k));
}

Result<std::vector<bool>> IdentifiableRows(const EncodedRelation& relation,
                                           size_t width) {
  if (relation.num_columns() > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  if (relation.num_columns() == 0 || relation.num_rows() == 0 ||
      width == 0) {
    return std::vector<bool>(relation.num_rows(), false);
  }
  PliCache cache(&relation);
  return IdentifiableRows(cache, width);
}

Result<double> IdentifiableByAnySubset(const EncodedRelation& relation,
                                       size_t max_subset_size) {
  size_t m = relation.num_columns();
  if (m == 0 || relation.num_rows() == 0) return 0.0;
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> identifiable,
                            IdentifiableRows(relation, max_subset_size));
  size_t count = 0;
  for (bool b : identifiable) count += b ? 1 : 0;
  return static_cast<double>(count) /
         static_cast<double>(identifiable.size());
}

Result<double> IdentifiableByAnySubset(PliCache& cache,
                                       size_t max_subset_size) {
  const size_t m = cache.encoded().num_columns();
  if (m == 0 || cache.encoded().num_rows() == 0) return 0.0;
  METALEAK_ASSIGN_OR_RETURN(std::vector<bool> identifiable,
                            IdentifiableRows(cache, max_subset_size));
  size_t count = 0;
  for (bool b : identifiable) count += b ? 1 : 0;
  return static_cast<double>(count) /
         static_cast<double>(identifiable.size());
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const Relation& relation, size_t max_size) {
  EncodedRelation encoded = EncodedRelation::Encode(relation);
  return DiscoverUniqueColumnCombinations(encoded, max_size);
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const EncodedRelation& relation, size_t max_size) {
  if (relation.num_columns() > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  PliCache cache(&relation);
  return DiscoverUniqueColumnCombinations(cache, max_size);
}

Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    PliCache& cache, size_t max_size) {
  size_t m = cache.encoded().num_columns();
  if (m > AttributeSet::kMaxAttributes) {
    return Status::Invalid("relation exceeds 64 attributes");
  }
  std::vector<AttributeSet> uccs;
  std::unordered_set<uint64_t> known_masks;
  auto covered_by_known = [&](AttributeSet attrs) {
    if (uccs.empty()) return false;
    // A candidate is non-minimal iff some known (strictly smaller) UCC
    // is a subset of it. When the known list outgrows the candidate's
    // 2^k proper-submask count, probing the bitmask set is cheaper than
    // the linear ContainsAll scan; otherwise scan the short list.
    const size_t k = attrs.size();
    const uint64_t mask = attrs.mask();
    if (k < 20 && (uint64_t{1} << k) < uccs.size()) {
      for (uint64_t s = (mask - 1) & mask; s != 0; s = (s - 1) & mask) {
        if (known_masks.count(s) > 0) return true;
      }
      return false;
    }
    for (AttributeSet known : uccs) {
      if (attrs.ContainsAll(known)) return true;
    }
    return false;
  };
  for (size_t k = 1; k <= std::min(max_size, m); ++k) {
    // Minimality only filters against smaller (previous-level) UCCs —
    // equal-size subsets cannot contain one another — so the level's
    // survivors can be checked concurrently and appended in lexicographic
    // order afterwards.
    std::vector<AttributeSet> candidates;
    ForEachSubset(m, k, [&](AttributeSet attrs) {
      if (!covered_by_known(attrs)) candidates.push_back(attrs);
    });
    std::vector<char> is_ucc(candidates.size(), 0);
    const size_t grain = std::max<size_t>(1, candidates.size() / 256);
    ParallelFor(0, candidates.size(), grain, [&](size_t i) {
      // Cached extension of the width-(k-1) prefix: one intersection per
      // candidate instead of a k-column FromEncoded rebuild.
      is_ucc[i] = cache.Get(candidates[i])->num_clusters() == 0;
    });
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (is_ucc[i]) {
        uccs.push_back(candidates[i]);
        known_masks.insert(candidates[i].mask());
      }
    }
  }
  return uccs;
}

}  // namespace metaleak
