#include "privacy/coalition.h"

#include <utility>

namespace metaleak {

Result<CoalitionLeakageSummary> EvaluateCoalitionLeakage(
    const MetadataPackage& joint, const Relation& victim_union,
    const ExperimentConfig& config) {
  if (!joint.HasAllDomains()) {
    return Status::Invalid(
        "coalition view lacks domains; reconstruction is impossible");
  }
  ExperimentEngine engine(victim_union, joint);
  // Coalition scoring runs every shipped estimator unless the caller
  // pinned a registry. Estimators draw no randomness, so the match/MSE
  // statistics (and the topology parity gates built on them) are
  // unchanged by the wider registry.
  ExperimentConfig run_config = config;
  if (run_config.estimators == nullptr) {
    run_config.estimators = &RiskEstimatorRegistry::All();
  }
  METALEAK_ASSIGN_OR_RETURN(MethodResult result,
                            engine.Run(GenerationMethod::kFull, run_config));

  CoalitionLeakageSummary summary;
  summary.rounds = config.rounds;
  double cat_matches = 0.0, cat_rows = 0.0;
  double cont_matches = 0.0, cont_rows = 0.0;
  double mse_sum = 0.0;
  size_t mse_count = 0;
  for (const MethodAttributeResult& a : result.attributes) {
    const double rows = static_cast<double>(a.rows_compared);
    if (a.semantic == SemanticType::kCategorical) {
      cat_matches += a.mean_matches;
      cat_rows += rows;
    } else {
      cont_matches += a.mean_matches;
      cont_rows += rows;
      if (a.mean_mse.has_value()) {
        mse_sum += *a.mean_mse;
        ++mse_count;
      }
    }
  }
  summary.categorical_match_rate =
      cat_rows > 0.0 ? cat_matches / cat_rows : 0.0;
  summary.continuous_match_rate =
      cont_rows > 0.0 ? cont_matches / cont_rows : 0.0;
  const double all_rows = cat_rows + cont_rows;
  summary.overall_match_rate =
      all_rows > 0.0 ? (cat_matches + cont_matches) / all_rows : 0.0;
  if (mse_count > 0) {
    summary.mean_mse = mse_sum / static_cast<double>(mse_count);
  }
  Result<RiskMeasureStats> mi = result.ForMeasure(
      InfoTheoreticEstimator::Instance().name(), "mi_bits");
  if (mi.ok() && mi->active) {
    double mi_sum = 0.0;
    size_t mi_count = 0;
    for (size_t c = 0; c < mi->mean.size(); ++c) {
      if (mi->rounds[c] > 0) {
        mi_sum += mi->mean[c];
        ++mi_count;
      }
    }
    if (mi_count > 0) {
      summary.mean_mi_bits = mi_sum / static_cast<double>(mi_count);
    }
  }
  summary.result = std::move(result);
  return summary;
}

Result<LeakageReport> ReplayCoalitionRound(const MetadataPackage& joint,
                                           const Relation& victim_union,
                                           uint64_t round_seed,
                                           const ExperimentConfig& config) {
  if (!joint.HasAllDomains()) {
    return Status::Invalid(
        "coalition view lacks domains; reconstruction is impossible");
  }
  ExperimentEngine engine(victim_union, joint);
  return engine.ReplayRound(GenerationMethod::kFull, round_seed, config);
}

}  // namespace metaleak
