#include "privacy/leakage_delta.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "privacy/analytical.h"

namespace metaleak {

Result<LeakageProfile> ComputeLeakageProfile(const EncodedRelation& encoded,
                                             const MetadataPackage& metadata,
                                             const LeakageOptions& leakage) {
  if (encoded.num_columns() != metadata.schema.num_attributes()) {
    return Status::Invalid(
        "metadata schema does not match the encoded relation");
  }
  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            metadata.RequireDomains());
  LeakageProfile profile;
  profile.schema = metadata.schema;
  profile.num_rows = encoded.num_rows();
  profile.dependencies = metadata.dependencies;
  profile.num_conditional_fds = metadata.conditional_fds.size();
  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    AttributeExpectation attr;
    attr.attribute = c;
    attr.name = metadata.schema.attribute(c).name;
    attr.semantic = metadata.schema.attribute(c).semantic;
    attr.compared =
        encoded.num_rows() - encoded.dictionary(c).null_count();
    if (attr.semantic == SemanticType::kCategorical) {
      attr.expected_random_matches =
          ExpectedRandomCategoricalMatches(attr.compared, domains[c]);
    } else {
      double eps = leakage.absolute_epsilon.has_value()
                       ? *leakage.absolute_epsilon
                       : leakage.epsilon_fraction * domains[c].range();
      attr.expected_random_matches =
          ExpectedRandomContinuousMatches(attr.compared, domains[c], eps);
    }
    attr.domain_leaks = attr.expected_random_matches >= 1.0;
    profile.attributes.push_back(std::move(attr));
  }
  METALEAK_ASSIGN_OR_RETURN(profile.risk_measures,
                            ComputeProfileMeasures(encoded, metadata));
  return profile;
}

Result<LeakageDelta> DiffLeakageProfiles(const LeakageProfile& before,
                                         const LeakageProfile& after) {
  if (before.attributes.size() != after.attributes.size()) {
    return Status::Invalid("leakage profiles have different widths");
  }
  LeakageDelta delta;
  delta.rows_delta = static_cast<long long>(after.num_rows) -
                     static_cast<long long>(before.num_rows);
  delta.expected_matches_delta.reserve(after.attributes.size());
  for (size_t c = 0; c < after.attributes.size(); ++c) {
    const AttributeExpectation& b = before.attributes[c];
    const AttributeExpectation& a = after.attributes[c];
    delta.expected_matches_delta.push_back(a.expected_random_matches -
                                           b.expected_random_matches);
    if (!b.domain_leaks && a.domain_leaks) delta.newly_leaking.push_back(c);
    if (b.domain_leaks && !a.domain_leaks) {
      delta.no_longer_leaking.push_back(c);
    }
  }
  for (const Dependency& d : after.dependencies.all()) {
    if (!before.dependencies.Contains(d)) {
      delta.dependencies_added.push_back(d);
    }
  }
  for (const Dependency& d : before.dependencies.all()) {
    if (!after.dependencies.Contains(d)) {
      delta.dependencies_removed.push_back(d);
    }
  }
  // Diff every measure column both profiles carry. A threshold of 1e-12
  // bits separates real drift from the profile recomputation's own
  // rounding; presence flips (a conditional-entropy bound appearing or
  // vanishing with its dependency) always count.
  constexpr double kDriftThreshold = 1e-12;
  for (const RiskProfileMeasure& b : before.risk_measures) {
    const RiskProfileMeasure* a = nullptr;
    for (const RiskProfileMeasure& candidate : after.risk_measures) {
      if (candidate.estimator == b.estimator &&
          candidate.measure == b.measure) {
        a = &candidate;
        break;
      }
    }
    if (a == nullptr || a->cells.size() != b.cells.size()) continue;
    for (size_t c = 0; c < b.cells.size(); ++c) {
      const RiskMeasureCell& before_cell = b.cells[c];
      const RiskMeasureCell& after_cell = a->cells[c];
      const bool presence_flip = before_cell.present != after_cell.present;
      const bool moved =
          before_cell.present && after_cell.present &&
          std::abs(after_cell.value - before_cell.value) > kDriftThreshold;
      if (presence_flip || moved) {
        delta.measure_drifts.push_back(
            MeasureDrift{b.estimator, b.measure, c, before_cell, after_cell});
      }
    }
  }
  return delta;
}

std::string LeakageDelta::ToString(const Schema& schema) const {
  if (empty()) return "";
  std::ostringstream os;
  if (rows_delta != 0) {
    os << "rows " << (rows_delta > 0 ? "+" : "") << rows_delta << "\n";
  }
  for (size_t c : newly_leaking) {
    os << schema.attribute(c).name
       << ": domain now leaks (E[matches] crossed 1, delta "
       << FormatDouble(expected_matches_delta[c], 3) << ")\n";
  }
  for (size_t c : no_longer_leaking) {
    os << schema.attribute(c).name
       << ": domain no longer leaks (E[matches] dropped below 1, delta "
       << FormatDouble(expected_matches_delta[c], 3) << ")\n";
  }
  for (const Dependency& d : dependencies_added) {
    os << "+ " << d.ToString(schema) << "\n";
  }
  for (const Dependency& d : dependencies_removed) {
    os << "- " << d.ToString(schema) << "\n";
  }
  for (const MeasureDrift& drift : measure_drifts) {
    os << schema.attribute(drift.attribute).name << ": "
       << drift.estimator << "/" << drift.measure << " ";
    if (!drift.before.present) {
      os << "appeared at " << FormatDouble(drift.after.value, 3);
    } else if (!drift.after.present) {
      os << "vanished (was " << FormatDouble(drift.before.value, 3) << ")";
    } else {
      os << FormatDouble(drift.before.value, 3) << " -> "
         << FormatDouble(drift.after.value, 3);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace metaleak
