#include "privacy/leakage_delta.h"

#include <sstream>

#include "common/string_util.h"
#include "privacy/analytical.h"

namespace metaleak {

Result<LeakageProfile> ComputeLeakageProfile(const EncodedRelation& encoded,
                                             const MetadataPackage& metadata,
                                             const LeakageOptions& leakage) {
  if (encoded.num_columns() != metadata.schema.num_attributes()) {
    return Status::Invalid(
        "metadata schema does not match the encoded relation");
  }
  METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                            metadata.RequireDomains());
  LeakageProfile profile;
  profile.schema = metadata.schema;
  profile.num_rows = encoded.num_rows();
  profile.dependencies = metadata.dependencies;
  profile.num_conditional_fds = metadata.conditional_fds.size();
  for (size_t c = 0; c < encoded.num_columns(); ++c) {
    AttributeExpectation attr;
    attr.attribute = c;
    attr.name = metadata.schema.attribute(c).name;
    attr.semantic = metadata.schema.attribute(c).semantic;
    attr.compared =
        encoded.num_rows() - encoded.dictionary(c).null_count();
    if (attr.semantic == SemanticType::kCategorical) {
      attr.expected_random_matches =
          ExpectedRandomCategoricalMatches(attr.compared, domains[c]);
    } else {
      double eps = leakage.absolute_epsilon.has_value()
                       ? *leakage.absolute_epsilon
                       : leakage.epsilon_fraction * domains[c].range();
      attr.expected_random_matches =
          ExpectedRandomContinuousMatches(attr.compared, domains[c], eps);
    }
    attr.domain_leaks = attr.expected_random_matches >= 1.0;
    profile.attributes.push_back(std::move(attr));
  }
  return profile;
}

Result<LeakageDelta> DiffLeakageProfiles(const LeakageProfile& before,
                                         const LeakageProfile& after) {
  if (before.attributes.size() != after.attributes.size()) {
    return Status::Invalid("leakage profiles have different widths");
  }
  LeakageDelta delta;
  delta.rows_delta = static_cast<long long>(after.num_rows) -
                     static_cast<long long>(before.num_rows);
  delta.expected_matches_delta.reserve(after.attributes.size());
  for (size_t c = 0; c < after.attributes.size(); ++c) {
    const AttributeExpectation& b = before.attributes[c];
    const AttributeExpectation& a = after.attributes[c];
    delta.expected_matches_delta.push_back(a.expected_random_matches -
                                           b.expected_random_matches);
    if (!b.domain_leaks && a.domain_leaks) delta.newly_leaking.push_back(c);
    if (b.domain_leaks && !a.domain_leaks) {
      delta.no_longer_leaking.push_back(c);
    }
  }
  for (const Dependency& d : after.dependencies.all()) {
    if (!before.dependencies.Contains(d)) {
      delta.dependencies_added.push_back(d);
    }
  }
  for (const Dependency& d : before.dependencies.all()) {
    if (!after.dependencies.Contains(d)) {
      delta.dependencies_removed.push_back(d);
    }
  }
  return delta;
}

std::string LeakageDelta::ToString(const Schema& schema) const {
  if (empty()) return "";
  std::ostringstream os;
  if (rows_delta != 0) {
    os << "rows " << (rows_delta > 0 ? "+" : "") << rows_delta << "\n";
  }
  for (size_t c : newly_leaking) {
    os << schema.attribute(c).name
       << ": domain now leaks (E[matches] crossed 1, delta "
       << FormatDouble(expected_matches_delta[c], 3) << ")\n";
  }
  for (size_t c : no_longer_leaking) {
    os << schema.attribute(c).name
       << ": domain no longer leaks (E[matches] dropped below 1, delta "
       << FormatDouble(expected_matches_delta[c], 3) << ")\n";
  }
  for (const Dependency& d : dependencies_added) {
    os << "+ " << d.ToString(schema) << "\n";
  }
  for (const Dependency& d : dependencies_removed) {
    os << "- " << d.ToString(schema) << "\n";
  }
  return os.str();
}

}  // namespace metaleak
