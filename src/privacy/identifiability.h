// Identifiability analysis: Definition 2.1 of the paper (GDPR Art. 5).
//
// A tuple is identifiable when some attribute subset's value combination
// is unique to it. The analyzer measures, per subset and aggregated, how
// many tuples are identifiable — the property anonymization must destroy
// before data sharing.
#ifndef METALEAK_PRIVACY_IDENTIFIABILITY_H_
#define METALEAK_PRIVACY_IDENTIFIABILITY_H_

#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "partition/attribute_set.h"

namespace metaleak {

class PliCache;

/// Per-row flags: row r is true iff its projection onto `attrs` is unique
/// in the relation. The `Relation` overloads below encode once and run
/// the code-path scans; subset sweeps should encode up front and reuse
/// one encoding across every projection.
Result<std::vector<bool>> UniqueRows(const Relation& relation,
                                     AttributeSet attrs);
Result<std::vector<bool>> UniqueRows(const EncodedRelation& relation,
                                     AttributeSet attrs);

/// Fraction of rows unique under projection to `attrs`.
Result<double> IdentifiableFraction(const Relation& relation,
                                    AttributeSet attrs);
Result<double> IdentifiableFraction(const EncodedRelation& relation,
                                    AttributeSet attrs);

/// Per-row flags: row r is true iff some attribute subset of size
/// exactly min(width, num_columns) makes it unique (uniqueness is
/// monotone in the subset, so width-k subsets cover every narrower
/// quasi-identifier too). The subset sweep — the identifiability hot
/// loop — runs on the shared thread pool; the per-subset verdicts are
/// OR-merged, so the result is thread-count independent. Shared by
/// IdentifiableByAnySubset and the tuple-risk analyzer.
///
/// Subset partitions are built by extension through the PliCache: each
/// width-k subset's PLI is the cached width-(k-1) prefix intersected
/// with one singleton, not a k-column rebuild. The PliCache overload
/// lets callers share the cache (and its subset partitions) across
/// several sweeps; the EncodedRelation overload owns a transient one.
Result<std::vector<bool>> IdentifiableRows(const EncodedRelation& relation,
                                           size_t width);
Result<std::vector<bool>> IdentifiableRows(PliCache& cache, size_t width);

/// The sweep kernel under IdentifiableRows: OR of per-subset uniqueness
/// over an explicit subset list (callers pick the frontier; this runs
/// it). Fails with the first error if any subset references an attribute
/// outside the relation.
Result<std::vector<bool>> IdentifiableRowsForSubsets(
    PliCache& cache, const std::vector<AttributeSet>& subsets);

/// Fraction of rows identifiable by *some* attribute subset of size at
/// most `max_subset_size` (Definition 2.1 with a bounded search: a row
/// identifiable at size k is identifiable at any larger size, so bounding
/// the subset size bounds the quasi-identifier width considered).
Result<double> IdentifiableByAnySubset(const Relation& relation,
                                       size_t max_subset_size);
Result<double> IdentifiableByAnySubset(const EncodedRelation& relation,
                                       size_t max_subset_size);
/// Shares the caller's cache (and its subset partitions) instead of
/// building a transient one — the warm-snapshot path.
Result<double> IdentifiableByAnySubset(PliCache& cache,
                                       size_t max_subset_size);

/// Minimal unique column combinations (candidate keys) with at most
/// `max_size` attributes: subsets whose projection is unique for every
/// row and no proper subset is. These witness that *all* tuples are
/// identifiable.
Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const Relation& relation, size_t max_size);
Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    const EncodedRelation& relation, size_t max_size);
Result<std::vector<AttributeSet>> DiscoverUniqueColumnCombinations(
    PliCache& cache, size_t max_size);

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_IDENTIFIABILITY_H_
