#include "privacy/leakage.h"

#include <cmath>

#include "data/domain.h"

namespace metaleak {

namespace {

Status CheckAligned(const Relation& real, const Relation& synthetic) {
  if (real.num_columns() != synthetic.num_columns()) {
    return Status::Invalid("relations have different arity");
  }
  if (real.num_rows() != synthetic.num_rows()) {
    return Status::Invalid(
        "index-aligned leakage needs equal row counts (got " +
        std::to_string(real.num_rows()) + " vs " +
        std::to_string(synthetic.num_rows()) + ")");
  }
  for (size_t c = 0; c < real.num_columns(); ++c) {
    if (real.schema().attribute(c).name !=
        synthetic.schema().attribute(c).name) {
      return Status::Invalid("attribute name mismatch at index " +
                             std::to_string(c));
    }
  }
  return Status::OK();
}

Status CheckAttribute(const Relation& real, size_t attribute) {
  if (attribute >= real.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  return Status::OK();
}

// Numeric equality across physical types: the synthetic generator emits
// doubles for continuous domains even when the real column is int64.
bool ValuesMatchCategorical(const Value& real, const Value& syn) {
  if (real == syn) return true;
  if (real.is_numeric() && syn.is_numeric()) {
    return real.AsNumeric() == syn.AsNumeric();
  }
  return false;
}

}  // namespace

size_t LeakageReport::TotalCategoricalMatches() const {
  size_t total = 0;
  for (const AttributeLeakage& a : attributes) {
    if (a.semantic == SemanticType::kCategorical) total += a.matches;
  }
  return total;
}

Result<AttributeLeakage> LeakageReport::ForAttribute(size_t attribute) const {
  for (const AttributeLeakage& a : attributes) {
    if (a.attribute == attribute) return a;
  }
  return Status::OutOfRange("no leakage entry for attribute " +
                            std::to_string(attribute));
}

Result<size_t> CountCategoricalMatches(const Relation& real,
                                       const Relation& synthetic,
                                       size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  size_t matches = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    if (rv.is_null()) continue;
    if (ValuesMatchCategorical(rv, synthetic.at(r, attribute))) ++matches;
  }
  return matches;
}

Result<size_t> CountContinuousMatches(const Relation& real,
                                      const Relation& synthetic,
                                      size_t attribute, double epsilon) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  if (epsilon < 0.0) {
    return Status::Invalid("epsilon must be non-negative");
  }
  size_t matches = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    const Value& sv = synthetic.at(r, attribute);
    if (rv.is_null() || !rv.is_numeric()) continue;
    if (sv.is_null() || !sv.is_numeric()) continue;
    if (std::abs(rv.AsNumeric() - sv.AsNumeric()) <= epsilon) ++matches;
  }
  return matches;
}

Result<double> AttributeMse(const Relation& real, const Relation& synthetic,
                            size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  double acc = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    const Value& sv = synthetic.at(r, attribute);
    if (rv.is_null() || !rv.is_numeric()) continue;
    if (sv.is_null() || !sv.is_numeric()) continue;
    double d = rv.AsNumeric() - sv.AsNumeric();
    acc += d * d;
    ++n;
  }
  if (n == 0) return 0.0;
  return acc / static_cast<double>(n);
}

Result<LeakageReport> EvaluateLeakage(const Relation& real,
                                      const Relation& synthetic,
                                      const LeakageOptions& options) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  LeakageReport report;
  for (size_t c = 0; c < real.num_columns(); ++c) {
    const Attribute& attr = real.schema().attribute(c);
    AttributeLeakage entry;
    entry.attribute = c;
    entry.name = attr.name;
    entry.semantic = attr.semantic;

    size_t compared = 0;
    for (size_t r = 0; r < real.num_rows(); ++r) {
      if (!real.at(r, c).is_null()) ++compared;
    }
    entry.rows_compared = compared;

    if (attr.semantic == SemanticType::kCategorical) {
      METALEAK_ASSIGN_OR_RETURN(entry.matches,
                                CountCategoricalMatches(real, synthetic, c));
    } else {
      double epsilon;
      if (options.absolute_epsilon.has_value()) {
        epsilon = *options.absolute_epsilon;
      } else {
        Result<Domain> domain = ExtractDomain(real, c);
        epsilon = domain.ok() ? options.epsilon_fraction * domain->range()
                              : 0.0;
      }
      METALEAK_ASSIGN_OR_RETURN(
          entry.matches, CountContinuousMatches(real, synthetic, c, epsilon));
      METALEAK_ASSIGN_OR_RETURN(double mse, AttributeMse(real, synthetic, c));
      entry.mse = mse;
    }
    entry.match_rate =
        compared == 0 ? 0.0
                      : static_cast<double>(entry.matches) /
                            static_cast<double>(compared);
    report.attributes.push_back(std::move(entry));
  }
  return report;
}

}  // namespace metaleak
