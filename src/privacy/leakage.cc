#include "privacy/leakage.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/simd.h"
#include "data/domain.h"

namespace metaleak {

namespace {

Status CheckAligned(const Relation& real, const Relation& synthetic) {
  if (real.num_columns() != synthetic.num_columns()) {
    return Status::Invalid("relations have different arity");
  }
  if (real.num_rows() != synthetic.num_rows()) {
    return Status::Invalid(
        "index-aligned leakage needs equal row counts (got " +
        std::to_string(real.num_rows()) + " vs " +
        std::to_string(synthetic.num_rows()) + ")");
  }
  for (size_t c = 0; c < real.num_columns(); ++c) {
    if (real.schema().attribute(c).name !=
        synthetic.schema().attribute(c).name) {
      return Status::Invalid("attribute name mismatch at index " +
                             std::to_string(c));
    }
  }
  return Status::OK();
}

Status CheckAttribute(const Relation& real, size_t attribute) {
  if (attribute >= real.num_columns()) {
    return Status::OutOfRange("attribute index out of range");
  }
  return Status::OK();
}

// Numeric equality across physical types: the synthetic generator emits
// doubles for continuous domains even when the real column is int64.
bool ValuesMatchCategorical(const Value& real, const Value& syn) {
  if (real == syn) return true;
  if (real.is_numeric() && syn.is_numeric()) {
    return real.AsNumeric() == syn.AsNumeric();
  }
  return false;
}

}  // namespace

size_t LeakageReport::TotalCategoricalMatches() const {
  size_t total = 0;
  for (const AttributeLeakage& a : attributes) {
    if (a.semantic == SemanticType::kCategorical) total += a.matches;
  }
  return total;
}

Result<AttributeLeakage> LeakageReport::ForAttribute(size_t attribute) const {
  // Reports built by EvaluateLeakage hold attribute i at index i; answer
  // from the index and keep the scan only for hand-assembled reports.
  if (attribute < attributes.size() &&
      attributes[attribute].attribute == attribute) {
    return attributes[attribute];
  }
  for (const AttributeLeakage& a : attributes) {
    if (a.attribute == attribute) return a;
  }
  return Status::OutOfRange("no leakage entry for attribute " +
                            std::to_string(attribute));
}

Result<size_t> CountCategoricalMatches(const Relation& real,
                                       const Relation& synthetic,
                                       size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  size_t matches = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    if (rv.is_null()) continue;
    const Value& sv = synthetic.at(r, attribute);
    // A synthetic NULL is never a match: the adversary produced no guess
    // for the cell. Stated explicitly so both this path and the code
    // path (where NULL is code 0 and real cells never translate to 0)
    // agree by construction rather than by accident of Value equality.
    if (sv.is_null()) continue;
    if (ValuesMatchCategorical(rv, sv)) ++matches;
  }
  return matches;
}

Result<size_t> CountContinuousMatches(const Relation& real,
                                      const Relation& synthetic,
                                      size_t attribute, double epsilon) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  if (epsilon < 0.0) {
    return Status::Invalid("epsilon must be non-negative");
  }
  size_t matches = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    const Value& sv = synthetic.at(r, attribute);
    if (rv.is_null() || !rv.is_numeric()) continue;
    if (sv.is_null() || !sv.is_numeric()) continue;
    if (std::abs(rv.AsNumeric() - sv.AsNumeric()) <= epsilon) ++matches;
  }
  return matches;
}

Result<double> AttributeMse(const Relation& real, const Relation& synthetic,
                            size_t attribute) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  METALEAK_RETURN_NOT_OK(CheckAttribute(real, attribute));
  double acc = 0.0;
  size_t n = 0;
  for (size_t r = 0; r < real.num_rows(); ++r) {
    const Value& rv = real.at(r, attribute);
    const Value& sv = synthetic.at(r, attribute);
    if (rv.is_null() || !rv.is_numeric()) continue;
    if (sv.is_null() || !sv.is_numeric()) continue;
    double d = rv.AsNumeric() - sv.AsNumeric();
    acc += d * d;
    ++n;
  }
  if (n == 0) return 0.0;
  return acc / static_cast<double>(n);
}

LeakageReport AssembleLeakageReport(
    const std::vector<LeakageAttributeMeta>& meta,
    const AttributeRoundStats* stats) {
  LeakageReport report;
  report.attributes.reserve(meta.size());
  for (size_t c = 0; c < meta.size(); ++c) {
    AttributeLeakage entry;
    entry.attribute = meta[c].attribute;
    entry.name = meta[c].name;
    entry.semantic = meta[c].semantic;
    entry.rows_compared = meta[c].rows_compared;
    entry.matches = stats[c].matches;
    if (stats[c].has_mse) entry.mse = stats[c].mse;
    entry.match_rate = meta[c].rows_compared == 0
                           ? 0.0
                           : static_cast<double>(entry.matches) /
                                 static_cast<double>(meta[c].rows_compared);
    report.attributes.push_back(std::move(entry));
  }
  return report;
}

Result<LeakageReport> EvaluateLeakage(const Relation& real,
                                      const Relation& synthetic,
                                      const LeakageOptions& options) {
  METALEAK_RETURN_NOT_OK(CheckAligned(real, synthetic));
  const size_t m = real.num_columns();
  std::vector<LeakageAttributeMeta> meta(m);
  std::vector<AttributeRoundStats> stats(m);
  for (size_t c = 0; c < m; ++c) {
    const Attribute& attr = real.schema().attribute(c);
    meta[c].attribute = c;
    meta[c].name = attr.name;
    meta[c].semantic = attr.semantic;

    size_t compared = 0;
    for (size_t r = 0; r < real.num_rows(); ++r) {
      if (!real.at(r, c).is_null()) ++compared;
    }
    meta[c].rows_compared = compared;

    if (attr.semantic == SemanticType::kCategorical) {
      METALEAK_ASSIGN_OR_RETURN(stats[c].matches,
                                CountCategoricalMatches(real, synthetic, c));
    } else {
      double epsilon;
      if (options.absolute_epsilon.has_value()) {
        epsilon = *options.absolute_epsilon;
      } else {
        Result<Domain> domain = ExtractDomain(real, c);
        epsilon = domain.ok() ? options.epsilon_fraction * domain->range()
                              : 0.0;
      }
      METALEAK_ASSIGN_OR_RETURN(
          stats[c].matches,
          CountContinuousMatches(real, synthetic, c, epsilon));
      METALEAK_ASSIGN_OR_RETURN(stats[c].mse,
                                AttributeMse(real, synthetic, c));
      stats[c].has_mse = true;
    }
  }
  return AssembleLeakageReport(meta, stats.data());
}

// --- Code-path evaluator -------------------------------------------------

Result<EncodedLeakageContext> EncodedLeakageContext::Build(
    const EncodedRelation& real, const Schema& syn_schema,
    const std::vector<Domain>& domains, const LeakageOptions& options) {
  const size_t m = real.num_columns();
  if (m != syn_schema.num_attributes() || m != domains.size()) {
    return Status::Invalid("relations have different arity");
  }
  for (size_t c = 0; c < m; ++c) {
    if (real.schema().attribute(c).name != syn_schema.attribute(c).name) {
      return Status::Invalid("attribute name mismatch at index " +
                             std::to_string(c));
    }
  }

  EncodedLeakageContext ctx;
  ctx.num_rows_ = real.num_rows();
  const std::vector<EncodedBatch::ColumnKind> kinds =
      ColumnKindsForDomains(domains);
  auto mark_unsupported = [&ctx](const char* reason) {
    if (ctx.supported_) {
      ctx.supported_ = false;
      ctx.fallback_reason_ = reason;
    }
  };

  ctx.attrs_.resize(m);
  for (size_t c = 0; c < m; ++c) {
    const ColumnDictionary& dict = real.dictionary(c);
    const CodeColumnView real_column = real.column_view(c);
    AttrPlan& plan = ctx.attrs_[c];
    const Attribute& attr = real.schema().attribute(c);
    plan.name = attr.name;
    plan.semantic = attr.semantic;
    plan.kind = kinds[c];
    plan.rows_compared = real.num_rows() - dict.null_count();

    const bool categorical = attr.semantic == SemanticType::kCategorical;
    if (categorical &&
        plan.kind == EncodedBatch::ColumnKind::kCodes) {
      // Translate each distinct real value into the generation domain
      // once (Def 2.2's match predicate, including the cross-type
      // numeric equality), then gather per row. The translation is
      // stored at the batch column's width, with that width's all-ones
      // value as the no-match sentinel, so the per-round compare is a
      // symmetric narrow scan.
      const std::vector<Value>& domain_values = domains[c].values();
      const CodeWidth width =
          CodeWidthForNumCodes(domain_values.size() + 1);
      const uint32_t sentinel = CodeWidthSentinel(width);
      std::vector<uint32_t> translate(dict.num_codes(), sentinel);
      // Bucket the domain by match key so each real code resolves in
      // O(1) instead of scanning the domain (quadratic at scale). The
      // keys mirror ValuesMatchCategorical exactly: a numeric entry is
      // matched by any numeric with the same AsNumeric() (Int 3 and
      // Real 3.0 collide — the cross-type case), a string entry only by
      // the identical string, a NULL entry by nothing. NaN keys can
      // never be looked up (NaN != NaN), same as the predicate.
      struct DomainHit {
        uint32_t last_index = 0;  // 1-based, last in domain order
        uint32_t count = 0;
      };
      std::unordered_map<double, DomainHit> numeric_hits;
      std::unordered_map<std::string, DomainHit> string_hits;
      numeric_hits.reserve(domain_values.size());
      for (size_t i = 0; i < domain_values.size(); ++i) {
        DomainHit* hit = nullptr;
        if (domain_values[i].is_numeric()) {
          hit = &numeric_hits[domain_values[i].AsNumeric()];
        } else if (domain_values[i].is_string()) {
          hit = &string_hits[domain_values[i].AsString()];
        } else {
          continue;
        }
        hit->last_index = static_cast<uint32_t>(i) + 1;
        ++hit->count;
      }
      for (uint32_t code = 1; code < dict.num_codes(); ++code) {
        const Value& rv = dict.decode(code);
        const DomainHit* hit = nullptr;
        if (rv.is_numeric()) {
          auto it = numeric_hits.find(rv.AsNumeric());
          if (it != numeric_hits.end()) hit = &it->second;
        } else if (rv.is_string()) {
          auto it = string_hits.find(rv.AsString());
          if (it != string_hits.end()) hit = &it->second;
        }
        if (hit == nullptr) continue;
        translate[code] = hit->last_index;
        if (hit->count > 1) {
          // E.g. Int(3) and Real(3.0) both disclosed: one real cell
          // matches two distinct synthetic codes, which a single
          // translated code cannot express.
          mark_unsupported(
              "real value matches several domain entries cross-type");
        }
      }
      plan.real_codes.Reset(width);
      plan.real_codes.reserve(real.num_rows());
      for (size_t r = 0; r < real.num_rows(); ++r) {
        plan.real_codes.push_back(translate[real_column.at(r)]);
      }
      continue;
    }

    // Numeric comparisons: per-row real numeric view (NaN = the row is
    // skipped / can never match).
    std::vector<double> by_code = dict.NumericByCode();
    plan.real_numeric.resize(real.num_rows());
    for (size_t r = 0; r < real.num_rows(); ++r) {
      plan.real_numeric[r] = by_code[real_column.at(r)];
    }

    if (!categorical) {
      // NaN is a *value* to the value path (it reaches the MSE sum) but
      // a skip marker here; fall back rather than diverge.
      for (uint32_t code = 1; code < dict.num_codes(); ++code) {
        if (std::isnan(by_code[code]) && dict.decode(code).is_numeric()) {
          mark_unsupported("NaN value in a continuous real column");
        }
      }
      if (options.absolute_epsilon.has_value()) {
        plan.epsilon = *options.absolute_epsilon;
      } else {
        Result<Domain> domain = real.DomainOf(c);
        plan.epsilon =
            domain.ok() ? options.epsilon_fraction * domain->range() : 0.0;
      }
      if (plan.kind == EncodedBatch::ColumnKind::kCodes) {
        const std::vector<Value>& domain_values = domains[c].values();
        plan.code_numeric.assign(domain_values.size() + 1,
                                 std::numeric_limits<double>::quiet_NaN());
        for (size_t i = 0; i < domain_values.size(); ++i) {
          if (domain_values[i].is_numeric()) {
            double x = domain_values[i].AsNumeric();
            if (std::isnan(x)) {
              mark_unsupported("NaN value in a generation domain");
              continue;
            }
            plan.code_numeric[i + 1] = x;
          }
        }
      }
    }
  }
  return ctx;
}

Status EncodedLeakageContext::Evaluate(const EncodedBatch& batch,
                                       AttributeRoundStats* stats) const {
  if (batch.num_columns() != attrs_.size()) {
    return Status::Invalid("relations have different arity");
  }
  if (batch.num_rows() != num_rows_) {
    return Status::Invalid(
        "index-aligned leakage needs equal row counts (got " +
        std::to_string(num_rows_) + " vs " +
        std::to_string(batch.num_rows()) + ")");
  }
  if (!supported_) {
    return Status::Invalid("leakage context is not encodable: " +
                           fallback_reason_);
  }
  const size_t n = num_rows_;
  const size_t m = attrs_.size();
  // All four scans dispatch through the SIMD kernel layer; every kernel
  // is byte-identical to the scalar loop it replaced (including NaN
  // handling and the row-order MSE accumulation), so the code-vs-value
  // golden parity is preserved at any dispatch level.
  //
  // Rows are walked in L2-sized tiles with the per-attribute stats
  // carried across tiles. Tile lengths are multiples of the kernels'
  // 4-row lane grouping, so the carried scans are bit-identical to one
  // full-length pass at every dispatch level.
  const SimdLevel level = ActiveSimdLevel();
  constexpr size_t kTileRows = 16384;  // multiple of 4
  thread_local std::vector<EpsilonBallStats> balls;
  balls.assign(m, EpsilonBallStats{});
  for (size_t c = 0; c < m; ++c) stats[c] = AttributeRoundStats{};

  for (size_t lo = 0; lo < n; lo += kTileRows) {
    const size_t len = std::min(kTileRows, n - lo);
    for (size_t c = 0; c < m; ++c) {
      const AttrPlan& plan = attrs_[c];
      if (plan.semantic == SemanticType::kCategorical) {
        if (plan.kind == EncodedBatch::ColumnKind::kCodes) {
          // A synthetic NULL (code 0) never matches: real cells
          // translate to domain codes >= 1 or the sentinel.
          stats[c].matches +=
              CountEqualCodes(level, plan.real_codes.view().Slice(lo, len),
                              batch.code_view(c).Slice(lo, len));
        } else {
          // NaN real entries (NULL / non-numeric) fail every comparison.
          stats[c].matches +=
              CountEqualF64(level, plan.real_numeric.data() + lo,
                            batch.reals(c).data() + lo, len);
        }
        continue;
      }
      // Continuous: epsilon-ball matches + MSE accumulated in row order
      // with the value path's exact skip predicate.
      if (plan.kind == EncodedBatch::ColumnKind::kCodes) {
        EpsilonBallMseCodedInto(level, plan.real_numeric.data() + lo,
                                batch.code_view(c).Slice(lo, len),
                                plan.code_numeric.data(), plan.epsilon,
                                &balls[c]);
      } else {
        EpsilonBallMseInto(level, plan.real_numeric.data() + lo,
                           batch.reals(c).data() + lo, len, plan.epsilon,
                           &balls[c]);
      }
    }
  }

  for (size_t c = 0; c < m; ++c) {
    const AttrPlan& plan = attrs_[c];
    if (plan.semantic == SemanticType::kCategorical) continue;
    const EpsilonBallStats& ball = balls[c];
    stats[c].matches = ball.matches;
    stats[c].mse = ball.compared == 0
                       ? 0.0
                       : ball.sum_squares / static_cast<double>(ball.compared);
    stats[c].has_mse = true;
  }
  return Status::OK();
}

EncodedLeakageContext::AttributeView EncodedLeakageContext::ViewAttribute(
    size_t attribute) const {
  const AttrPlan& plan = attrs_[attribute];
  AttributeView view;
  view.semantic = plan.semantic;
  view.kind = plan.kind;
  view.epsilon = plan.epsilon;
  if (!plan.real_codes.empty()) view.real_codes = plan.real_codes.view();
  if (!plan.real_numeric.empty()) {
    view.real_numeric = plan.real_numeric.data();
  }
  if (!plan.code_numeric.empty()) {
    view.code_numeric = plan.code_numeric.data();
  }
  return view;
}

std::vector<LeakageAttributeMeta> EncodedLeakageContext::AttributeMetas()
    const {
  std::vector<LeakageAttributeMeta> meta(attrs_.size());
  for (size_t c = 0; c < attrs_.size(); ++c) {
    meta[c].attribute = c;
    meta[c].name = attrs_[c].name;
    meta[c].semantic = attrs_[c].semantic;
    meta[c].rows_compared = attrs_[c].rows_compared;
  }
  return meta;
}

Result<LeakageReport> EncodedLeakageContext::EvaluateReport(
    const EncodedBatch& batch) const {
  std::vector<AttributeRoundStats> stats(attrs_.size());
  METALEAK_RETURN_NOT_OK(Evaluate(batch, stats.data()));
  return AssembleLeakageReport(AttributeMetas(), stats.data());
}

}  // namespace metaleak
