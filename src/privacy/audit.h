// One-call privacy audit: profile -> reconstruct -> measure -> report.
//
// This is the library's top-level entry point for the question in the
// paper's title. Given a relation, it discovers the metadata a party
// would share, measures identifiability (Def 2.1), runs the
// generation-methods experiment (Defs 2.2/2.3), and renders a
// human-readable report with a per-attribute share/withhold verdict.
#ifndef METALEAK_PRIVACY_AUDIT_H_
#define METALEAK_PRIVACY_AUDIT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "privacy/experiment.h"

namespace metaleak {

struct AuditOptions {
  DiscoveryOptions discovery;
  ExperimentConfig experiment;
  /// Generation methods compared against the random baseline. The
  /// baseline itself is always run and need not be listed.
  std::vector<GenerationMethod> methods = {
      GenerationMethod::kFd, GenerationMethod::kOd, GenerationMethod::kNd};
  /// Maximum quasi-identifier width for the identifiability scan.
  size_t identifiability_max_width = 2;
};

/// Per-attribute audit verdict.
struct AttributeAudit {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// Expected matches from names+domains alone (Section III-A model).
  double expected_random_matches = 0.0;
  /// Measured mean matches of the random baseline.
  double measured_random_matches = 0.0;
  /// Largest measured mean matches across the dependency methods that
  /// cover this attribute (== measured_random_matches when none do).
  double worst_dependency_matches = 0.0;
  /// True when some dependency method exceeded random beyond 3 sigma —
  /// i.e. the dependency itself is a leak channel for this attribute.
  bool dependency_adds_leakage = false;
  /// True when the domain alone already implies expected leakage
  /// (expected_random_matches >= 1).
  bool domain_leaks = false;
};

struct AuditResult {
  MetadataPackage metadata;
  /// Per-class lattice-search statistics from the discovery pass.
  std::vector<ClassSearchStats> discovery_stats;
  /// Fraction of tuples identifiable via subsets up to the configured
  /// width (Definition 2.1).
  double identifiable_fraction = 0.0;
  std::vector<MethodResult> method_results;  // [0] is the random baseline
  std::vector<AttributeAudit> attributes;

  /// Markdown report (headers, dependency list, verdict table,
  /// recommendation).
  std::string ToMarkdown() const;
};

/// Runs the full audit.
Result<AuditResult> RunAudit(const Relation& relation,
                             const AuditOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_AUDIT_H_
