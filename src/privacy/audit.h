// One-call privacy audit: profile -> reconstruct -> measure -> report.
//
// This is the library's top-level entry point for the question in the
// paper's title. Given a relation, it discovers the metadata a party
// would share, measures identifiability (Def 2.1), runs the
// generation-methods experiment (Defs 2.2/2.3), and renders a
// human-readable report with a per-attribute share/withhold verdict.
#ifndef METALEAK_PRIVACY_AUDIT_H_
#define METALEAK_PRIVACY_AUDIT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "partition/pli_cache.h"
#include "privacy/experiment.h"

namespace metaleak {

struct AuditOptions {
  DiscoveryOptions discovery;
  ExperimentConfig experiment;
  /// Generation methods compared against the random baseline. The
  /// baseline itself is always run and need not be listed.
  std::vector<GenerationMethod> methods = {
      GenerationMethod::kFd, GenerationMethod::kOd, GenerationMethod::kNd};
  /// Maximum quasi-identifier width for the identifiability scan.
  size_t identifiability_max_width = 2;
};

/// Per-attribute audit verdict.
struct AttributeAudit {
  size_t attribute = 0;
  std::string name;
  SemanticType semantic = SemanticType::kCategorical;
  /// Expected matches from names+domains alone (Section III-A model).
  double expected_random_matches = 0.0;
  /// Measured mean matches of the random baseline.
  double measured_random_matches = 0.0;
  /// Largest measured mean matches across the dependency methods that
  /// cover this attribute (== measured_random_matches when none do).
  double worst_dependency_matches = 0.0;
  /// True when some dependency method exceeded random beyond 3 sigma —
  /// i.e. the dependency itself is a leak channel for this attribute.
  bool dependency_adds_leakage = false;
  /// True when the domain alone already implies expected leakage
  /// (expected_random_matches >= 1).
  bool domain_leaks = false;
};

/// Cache counters surfaced in the markdown report. The PLI numbers are
/// the audit-attributable deltas of the cache it ran against; the
/// snapshot numbers are filled by the session layer (service/) when the
/// audit is served from a registered snapshot.
struct AuditCacheStats {
  uint64_t pli_hits = 0;
  uint64_t pli_misses = 0;
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  uint64_t snapshot_evictions = 0;

  double PliHitRate() const {
    uint64_t total = pli_hits + pli_misses;
    if (total == 0) return 0.0;
    return static_cast<double>(pli_hits) / static_cast<double>(total);
  }
};

struct AuditResult {
  MetadataPackage metadata;
  /// Per-class lattice-search statistics from the discovery pass.
  std::vector<ClassSearchStats> discovery_stats;
  /// Fraction of tuples identifiable via subsets up to the configured
  /// width (Definition 2.1).
  double identifiable_fraction = 0.0;
  std::vector<MethodResult> method_results;  // [0] is the random baseline
  std::vector<AttributeAudit> attributes;
  /// Present when the audit ran against a caller-owned cache (the
  /// profiled path) — rendered as a "Cache observability" section.
  std::optional<AuditCacheStats> cache_stats;

  /// Markdown report (headers, dependency list, verdict table,
  /// recommendation).
  std::string ToMarkdown() const;
};

/// Runs the full audit.
Result<AuditResult> RunAudit(const Relation& relation,
                             const AuditOptions& options = {});

/// Audits an already-profiled snapshot — the warm path: no encoding, no
/// discovery. `cache` must be built over the snapshot's encoding (with
/// a live source Relation) and `profile` must be that snapshot's
/// discovery output; only identifiability, the Monte-Carlo experiment,
/// and the verdicts run here. `AuditOptions::discovery` is ignored.
Result<AuditResult> RunAuditProfiled(PliCache& cache,
                                     const DiscoveryReport& profile,
                                     const AuditOptions& options = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_AUDIT_H_
