// Coalition leakage: Monte-Carlo Def 2.2/2.3 evaluation of a merged
// (joint) metadata view against the union of victim slices.
//
// A coalition of curious parties pools every MetadataPackage it received
// about the victims into one joint package (metadata/metadata_policy.h
// provides the merge). This module scores that joint view: the rounds
// stream through ExperimentEngine's encoded path with per-round seeds, so
// the summary is identical for any thread count and any recorded round
// replays in isolation.
#ifndef METALEAK_PRIVACY_COALITION_H_
#define METALEAK_PRIVACY_COALITION_H_

#include <cstdint>
#include <optional>

#include "common/result.h"
#include "data/relation.h"
#include "metadata/metadata_package.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

namespace metaleak {

struct CoalitionLeakageSummary {
  size_t rounds = 0;
  /// Per-attribute streamed means under the full-package method,
  /// including the recorded per-round seeds for replay.
  MethodResult result;
  /// Aggregate Def 2.2/2.3 rates: mean matches summed over the attribute
  /// group divided by the group's compared-row total (0 when the group is
  /// empty).
  double overall_match_rate = 0.0;
  double categorical_match_rate = 0.0;
  double continuous_match_rate = 0.0;
  /// Mean of the per-attribute mean MSEs (continuous attributes only).
  std::optional<double> mean_mse;
  /// Mean over attributes of the info-theoretic estimator's mean
  /// real-vs-generated mutual information (bits). Unset when the run
  /// fell back to the value path (the estimator needs encoded batches)
  /// or the registry omitted the estimator.
  std::optional<double> mean_mi_bits;
};

/// Runs `config.rounds` full-package reconstruction rounds of `joint`
/// against `victim_union` and aggregates. The joint package must disclose
/// every attribute domain (Invalid otherwise, as reconstruction below
/// names+domains is impossible).
Result<CoalitionLeakageSummary> EvaluateCoalitionLeakage(
    const MetadataPackage& joint, const Relation& victim_union,
    const ExperimentConfig& config = {});

/// Re-executes one recorded round (CoalitionLeakageSummary::result::
/// round_seeds) and returns its full per-attribute report — the round's
/// exact contribution to the streamed means.
Result<LeakageReport> ReplayCoalitionRound(const MetadataPackage& joint,
                                           const Relation& victim_union,
                                           uint64_t round_seed,
                                           const ExperimentConfig& config = {});

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_COALITION_H_
