// Pluggable risk estimators: the leakage-measurement abstraction.
//
// The paper measures leakage as Def 2.2/2.3 match-rate + MSE. ROADMAP
// item 4 adds two more families — information-theoretic measures
// (entropy / conditional entropy / real-vs-generated mutual information,
// after the "Information-theoretic Estimation of the Risk of Privacy
// Leaks" line of work) and a nearest-neighbor linkage adversary on
// continuous attributes (CVPL-style post-hoc linkage risk). Rather than
// hard-wiring each measure through the experiment runner, every measure
// is a RiskEstimator:
//
//   * Bind() resolves everything the per-round evaluation needs against
//     the real relation and the generation layout once (mirroring
//     EncodedLeakageContext::Build), and returns a BoundRiskEstimator.
//   * Evaluate() scores one generated EncodedBatch into named
//     RiskMeasureCell columns — one cell per (measure, attribute).
//
// ExperimentEngine streams the cells through the same Welford fold it
// uses for Def 2.2/2.3 today: cells are produced per round in any
// thread order but folded in ascending round order, so every estimator
// inherits the library-wide bit-identity guarantees (threads-1 ==
// threads-8; and for MatchRateEstimator, code path == value path).
// Estimators draw no randomness of their own — a registry swap can
// never perturb the generated batches, which the golden-parity gates
// rely on.
#ifndef METALEAK_PRIVACY_RISK_ESTIMATOR_H_
#define METALEAK_PRIVACY_RISK_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "data/schema.h"
#include "metadata/metadata_package.h"
#include "privacy/leakage.h"

namespace metaleak {

/// Identity of one measure column an estimator emits.
struct RiskMeasureSpec {
  /// Stable machine key, e.g. "matches", "mi_bits".
  std::string key;
  /// Human-readable label for reports, e.g. "MI(real; gen) [bits]".
  std::string label;
};

/// One (measure, attribute) accumulator cell of one round. `present`
/// distinguishes a measured 0.0 from "this measure does not apply to
/// this attribute" (e.g. MSE on a categorical column): absent cells are
/// skipped by the Welford fold, exactly like the has_mse flag the fused
/// scan used.
struct RiskMeasureCell {
  double value = 0.0;
  bool present = false;
};

/// Everything Bind() may resolve against. All pointers are borrowed and
/// must outlive the bound estimator.
struct RiskContext {
  /// The encoded real relation R_real.
  const EncodedRelation* real = nullptr;
  /// Schema the generator emits (names match real's schema).
  const Schema* syn_schema = nullptr;
  /// Generation domains the batches are coded against.
  const std::vector<Domain>* domains = nullptr;
  /// The disclosed package (dependencies drive conditional entropy).
  const MetadataPackage* metadata = nullptr;
  LeakageOptions leakage;
};

/// An estimator resolved against one (real relation, generation layout)
/// pair. Evaluate() is const and thread-safe: rounds running on
/// different threads share one bound instance.
class BoundRiskEstimator {
 public:
  virtual ~BoundRiskEstimator() = default;

  /// Scores one generated batch. `cells` points at this estimator's
  /// block of num_measures x num_attributes cells, laid out
  /// cells[measure * num_attributes + attribute]; every cell must be
  /// (re)written, including `present`.
  virtual Status Evaluate(const EncodedBatch& batch,
                          RiskMeasureCell* cells) const = 0;

  /// The fused Def 2.2/2.3 context, when this estimator owns one
  /// (MatchRateEstimator only). The experiment engine reads it for the
  /// code-vs-value path decision and for per-round report replay;
  /// estimators without one return nullptr.
  virtual const EncodedLeakageContext* leakage_context() const {
    return nullptr;
  }
};

/// A named family of risk measures. Stateless and immutable; the
/// singleton instances below live for the process.
class RiskEstimator {
 public:
  virtual ~RiskEstimator() = default;

  virtual const std::string& name() const = 0;
  /// The measure columns every bound instance emits, in cell order.
  virtual const std::vector<RiskMeasureSpec>& measures() const = 0;

  /// Resolves the estimator against one real relation + generation
  /// layout. Fails only on structural mismatch (arity, names) — the
  /// Status EncodedLeakageContext::Build would produce.
  virtual Result<std::unique_ptr<BoundRiskEstimator>> Bind(
      const RiskContext& ctx) const = 0;
};

/// Def 2.2/2.3 as an estimator: the pre-refactor fused match+MSE scan
/// re-expressed through the interface. Emits "matches" (always present)
/// and "mse" (continuous attributes), with cell values exactly equal to
/// the AttributeRoundStats the fused scan produced — the experiment
/// engine's fold over these cells is bit-identical to the pre-refactor
/// fold (the golden-parity suites enforce it at 1 and 8 threads).
class MatchRateEstimator : public RiskEstimator {
 public:
  /// Measure indices, part of the contract: the engine's value-path
  /// fallback fills these two columns directly from EvaluateLeakage.
  static constexpr size_t kMatchesIndex = 0;
  static constexpr size_t kMseIndex = 1;

  static const MatchRateEstimator& Instance();

  const std::string& name() const override;
  const std::vector<RiskMeasureSpec>& measures() const override;
  Result<std::unique_ptr<BoundRiskEstimator>> Bind(
      const RiskContext& ctx) const override;
};

/// Information-theoretic measures off dense-code histograms:
///
///   * "entropy_bits" — Shannon entropy of the attribute's disclosed
///     non-null marginal, read off the dictionary counts (batch
///     independent; folds to stddev 0).
///   * "cond_entropy_bits" — min over disclosed single-attribute-LHS
///     dependencies with this attribute as RHS of H(RHS | LHS), the
///     residual uncertainty the dependency leaves an adversary. NULL
///     participates as its own symbol. Absent when no such dependency
///     is disclosed; multi-attribute LHSs and CFDs are out of scope.
///   * "mi_bits" — per-round mutual information between the real column
///     and the generated column: joint over (real dictionary code,
///     generated domain code) pairs for code-stored columns (the
///     generated marginal is counted with the SIMD histogram kernels),
///     or over 64 equi-width generation-domain bins for real-stored
///     columns. The empirical "how much of R_real does R_syn carry"
///     measure the analytical models are calibrated against.
class InfoTheoreticEstimator : public RiskEstimator {
 public:
  static constexpr size_t kEntropyIndex = 0;
  static constexpr size_t kCondEntropyIndex = 1;
  static constexpr size_t kMiIndex = 2;
  /// Bins per side for the continuous (real-stored) MI estimate.
  static constexpr uint32_t kMiBins = 64;

  static const InfoTheoreticEstimator& Instance();

  const std::string& name() const override;
  const std::vector<RiskMeasureSpec>& measures() const override;
  Result<std::unique_ptr<BoundRiskEstimator>> Bind(
      const RiskContext& ctx) const override;
};

/// Nearest-neighbor linkage adversary on continuous attributes: links
/// every real value to its nearest generated value (any row — the
/// post-hoc linkage attack, strictly stronger than index-aligned
/// comparison).
///
///   * "nn_eps_matches" — real rows whose nearest generated value lands
///     within the Def 2.3 epsilon ball (same epsilon policy as the
///     match-rate scan).
///   * "nn_top1_hits" — real rows whose index-aligned generated value
///     ties the nearest-neighbor distance: the adversary's top-1 link
///     is the correct row (ties count — the strongest adversary).
///
/// Both cells are absent for categorical attributes.
class NnLinkageEstimator : public RiskEstimator {
 public:
  static constexpr size_t kEpsMatchesIndex = 0;
  static constexpr size_t kTop1HitsIndex = 1;

  static const NnLinkageEstimator& Instance();

  const std::string& name() const override;
  const std::vector<RiskMeasureSpec>& measures() const override;
  Result<std::unique_ptr<BoundRiskEstimator>> Bind(
      const RiskContext& ctx) const override;
};

/// An ordered set of estimators the experiment engine runs per round.
/// The match-rate estimator is always first — the engine relies on it
/// for the code-vs-value path decision and replay.
class RiskEstimatorRegistry {
 public:
  /// Match-rate only: the pre-refactor behavior, and the default when
  /// ExperimentConfig::estimators is unset.
  static const RiskEstimatorRegistry& Default();

  /// Match-rate + info-theoretic + NN-linkage: everything the library
  /// ships. The audit service and the VFL sweeps run this.
  static const RiskEstimatorRegistry& All();

  /// Custom registry; `estimators.front()` must be the match-rate
  /// estimator (checked by the engine).
  explicit RiskEstimatorRegistry(
      std::vector<const RiskEstimator*> estimators);

  const std::vector<const RiskEstimator*>& estimators() const {
    return estimators_;
  }

  /// Total measure columns across all estimators.
  size_t total_measures() const;

 private:
  std::vector<const RiskEstimator*> estimators_;
};

/// One batch-independent measure column over a relation: the slice of
/// estimator output that depends only on R_real and its disclosed
/// metadata (entropy, conditional entropy). Cached in leakage profiles
/// / audit snapshots and diffed by LeakageDelta.
struct RiskProfileMeasure {
  std::string estimator;
  std::string measure;
  /// One cell per attribute.
  std::vector<RiskMeasureCell> cells;
};

/// Computes every batch-independent measure the shipped estimators
/// expose for `real` under `metadata`: the entropy column straight off
/// the dictionaries, and the conditional-entropy column from the
/// disclosed dependency set (cells absent for attributes no disclosed
/// single-attribute-LHS dependency covers). Needs no domains — the
/// profile degrades gracefully, like expected-match columns do.
Result<std::vector<RiskProfileMeasure>> ComputeProfileMeasures(
    const EncodedRelation& real, const MetadataPackage& metadata);

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_RISK_ESTIMATOR_H_
