// Closed-form expected-leakage models from Sections III and IV.
//
// These are the paper's probabilistic derivations as executable code. The
// bench `bench_analytical_vs_empirical` cross-checks every formula here
// against the Monte-Carlo experiment runner.
#ifndef METALEAK_PRIVACY_ANALYTICAL_H_
#define METALEAK_PRIVACY_ANALYTICAL_H_

#include <cstdint>

#include "data/domain.h"

namespace metaleak {

/// Section III-A: expected exact matches when generating N categorical
/// values uniformly from a domain of size |D|: N * (1/|D|). Privacy
/// leakage is expected as soon as this reaches 1.
double ExpectedRandomCategoricalMatches(size_t num_rows,
                                        const Domain& domain);

/// Def 2.3 analogue for continuous uniform generation: each draw lands in
/// the real value's epsilon ball with probability (length of the ball
/// clipped to the domain) / range ~= 2*eps/range, so the expectation is
/// N * 2*eps / range.
double ExpectedRandomContinuousMatches(size_t num_rows, const Domain& domain,
                                       double epsilon);

/// MSE of a uniform draw against a fixed target, averaged over a uniform
/// target on the same domain [a, b]: E[(X-Y)^2] = (b-a)^2 / 6. This is
/// the Table-III-style baseline MSE for random generation.
double ExpectedRandomContinuousMse(const Domain& domain);

/// Section III-B: expected number of correct entries in the one-shot
/// FD mapping A -> B: E(B|A) = |D_A| / |D_B| (at least one when A refines
/// B). Note this is about the *mapping*, not the tuple matches.
double ExpectedCorrectFdMappings(const Domain& lhs, const Domain& rhs);

/// Section III-B's conclusion: expected tuple-level matches on the RHS of
/// an FD equal random generation, N/|D_B| (the mapping indirection does
/// not change the marginal hit probability).
double ExpectedFdRhsMatches(size_t num_rows, const Domain& rhs);

/// Section IV-B: expected correctly generated (X, Y) pairs under a
/// numerical dependency with fan-out K: N * K / (|D_X| * |D_Y|).
double ExpectedNdPairMatches(size_t num_rows, const Domain& lhs,
                             const Domain& rhs, size_t fanout);

/// Section IV-B: probability that the sampled pool of K values contains
/// at least one of the K real values (hyper-geometric, both draws of
/// size K from |D_Y|): 1 - C(|D_Y|-K, K)/C(|D_Y|, K).
double NdAtLeastOneCorrectMapping(const Domain& rhs, size_t fanout);

/// Marginal hit probability of the RHS under ND generation: the pool
/// contains the real value with probability K/|D_Y| and is then chosen
/// with probability 1/K — i.e. exactly 1/|D_Y|, the random baseline.
/// Returned as an expectation over N rows.
double ExpectedNdRhsMatches(size_t num_rows, const Domain& rhs);

/// Section IV-C: numerical evaluation of the order-dependency expectation
/// sum_i N_i * theta_{y_i}, where theta_{y_i} is the expected normalized
/// overlap between the i-th generated interval and the i-th real interval
/// when both endpoint sequences are uniform order statistics over the
/// domain. Evaluated by deterministic quasi-Monte-Carlo quadrature with
/// `resolution` samples (the paper leaves this integral implicit).
double ExpectedOdMatches(size_t num_rows, size_t num_partitions,
                         const Domain& rhs, double epsilon,
                         uint64_t resolution = 4096);

/// Section IV-A: expected RHS matches under AFD generation with g3 error
/// epsilon. The (1-eps) fraction follows the FD one-shot mapping and the
/// eps fraction is re-drawn independently; both have marginal 1/|D_B|,
/// so the total equals the strict-FD (= random) expectation — "the
/// privacy conclusion for AFD is the same as FD".
double ExpectedAfdMatches(size_t num_rows, const Domain& rhs,
                          double g3_error);

/// Section IV-E: the OFD transition probability the paper samples from a
/// uniform distribution over the remaining partitions,
/// P_{t,t+1} = 1 - (|X| - t)/|Y|, clamped to [0, 1]; equals 1 once the
/// remaining LHS partitions exhaust the RHS domain (the forced move that
/// keeps the relation total).
double OfdTransitionProbability(size_t lhs_partitions, size_t step,
                                const Domain& rhs);

/// Section IV-E: expected matches under OFD generation, N * theta_X *
/// theta_{Y_t} summed over the time-dependent chain. Like
/// ExpectedOdMatches this is evaluated numerically (strictly increasing
/// order statistics instead of non-decreasing ones).
double ExpectedOfdMatches(size_t num_rows, size_t num_partitions,
                          const Domain& rhs, double epsilon,
                          uint64_t resolution = 4096);

/// Section IV-D: expected matches under a differential dependency when
/// the chain restarts (LHS gap > eps) with probability `restart_rate`:
/// restarted rows behave like random generation; chained rows hit when
/// the delta ball overlaps the real epsilon ball, approximated by
/// (2*eps + 2*delta clipped to range)/range... conservative upper bound
/// 2*(eps+delta)/range per chained row.
double ExpectedDdMatches(size_t num_rows, const Domain& rhs, double epsilon,
                         double delta, double restart_rate);

}  // namespace metaleak

#endif  // METALEAK_PRIVACY_ANALYTICAL_H_
