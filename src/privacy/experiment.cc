#include "privacy/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "generation/cfd_generator.h"
#include "generation/generation_engine.h"

namespace metaleak {

std::string GenerationMethodToString(GenerationMethod method) {
  switch (method) {
    case GenerationMethod::kRandom:
      return "Random Generation";
    case GenerationMethod::kFd:
      return "Functional Dep";
    case GenerationMethod::kAfd:
      return "Approximate FD";
    case GenerationMethod::kNd:
      return "Numerical Dep";
    case GenerationMethod::kOd:
      return "Order Dep";
    case GenerationMethod::kDd:
      return "Differential Dep";
    case GenerationMethod::kOfd:
      return "Ordered FD";
    case GenerationMethod::kCfd:
      return "Conditional FD";
  }
  return "unknown";
}

namespace {

GenerationOptions OptionsForMethod(GenerationMethod method) {
  GenerationOptions out;
  switch (method) {
    case GenerationMethod::kRandom:
      out.ignore_dependencies = true;
      break;
    case GenerationMethod::kFd:
      out.allowed_kinds = {DependencyKind::kFunctional};
      break;
    case GenerationMethod::kAfd:
      out.allowed_kinds = {DependencyKind::kApproximateFunctional};
      break;
    case GenerationMethod::kNd:
      out.allowed_kinds = {DependencyKind::kNumerical};
      break;
    case GenerationMethod::kOd:
      out.allowed_kinds = {DependencyKind::kOrder};
      break;
    case GenerationMethod::kDd:
      out.allowed_kinds = {DependencyKind::kDifferential};
      break;
    case GenerationMethod::kOfd:
      out.allowed_kinds = {DependencyKind::kOrderedFunctional};
      break;
    case GenerationMethod::kCfd:
      // Roots only; the CFD repair pass runs after generation.
      out.ignore_dependencies = true;
      break;
  }
  return out;
}

}  // namespace

Result<MethodAttributeResult> MethodResult::ForAttribute(
    size_t attribute) const {
  for (const MethodAttributeResult& a : attributes) {
    if (a.attribute == attribute) return a;
  }
  return Status::OutOfRange("no result for attribute " +
                            std::to_string(attribute));
}

Result<MethodResult> RunMethod(const Relation& real,
                               const MetadataPackage& metadata,
                               GenerationMethod method,
                               const ExperimentConfig& config) {
  if (config.rounds == 0) {
    return Status::Invalid("experiment needs at least one round");
  }
  GenerationOptions gen_options = OptionsForMethod(method);
  Rng rng(config.seed);

  const size_t m = real.num_columns();
  std::vector<std::vector<double>> matches(m);
  std::vector<std::vector<double>> mses(m);
  std::vector<bool> covered(m, method == GenerationMethod::kRandom);

  // Per-round seeds drawn up front so the outcome is identical for any
  // thread count.
  std::vector<Rng> round_rngs;
  round_rngs.reserve(config.rounds);
  for (size_t round = 0; round < config.rounds; ++round) {
    round_rngs.push_back(rng.Fork());
  }

  // One round of the Monte-Carlo loop; writes its report into `slot`.
  std::vector<LeakageReport> reports(config.rounds);
  std::vector<Status> round_status(config.rounds);
  auto run_round = [&](size_t round) -> Status {
    Rng round_rng = round_rngs[round];
    METALEAK_ASSIGN_OR_RETURN(
        GenerationOutcome outcome,
        GenerateSynthetic(metadata, real.num_rows(), &round_rng,
                          gen_options));
    if (method == GenerationMethod::kCfd) {
      METALEAK_ASSIGN_OR_RETURN(std::vector<Domain> domains,
                                metadata.RequireDomains());
      METALEAK_ASSIGN_OR_RETURN(
          outcome.relation,
          ApplyCfds(outcome.relation, metadata.conditional_fds, domains,
                    &round_rng));
    } else if (round == 0 && method != GenerationMethod::kRandom) {
      for (const GenerationStep& step : outcome.plan.steps()) {
        covered[step.attribute] = step.via.has_value();
      }
    }
    METALEAK_ASSIGN_OR_RETURN(
        reports[round],
        EvaluateLeakage(real, outcome.relation, config.leakage));
    return Status::OK();
  };
  if (method == GenerationMethod::kCfd) {
    for (const ConditionalFd& cfd : metadata.conditional_fds) {
      if (cfd.rhs < m) covered[cfd.rhs] = true;
    }
  }

  size_t threads = config.threads;
  if (threads == 0) threads = GlobalThreadCount();
  threads = std::min(threads, config.rounds);
  if (threads <= 1) {
    for (size_t round = 0; round < config.rounds; ++round) {
      METALEAK_RETURN_NOT_OK(run_round(round));
    }
  } else {
    // Round 0 runs first on this thread: it fills `covered`, which the
    // pool workers must not race on. The remaining rounds fan out over
    // the shared pool; each round's seed was drawn up front, so the
    // outcome is identical for any thread count.
    METALEAK_RETURN_NOT_OK(run_round(0));
    ParallelFor(
        1, config.rounds, 1,
        [&](size_t round) { round_status[round] = run_round(round); },
        threads);
    for (size_t round = 1; round < config.rounds; ++round) {
      METALEAK_RETURN_NOT_OK(round_status[round]);
    }
  }

  for (size_t round = 0; round < config.rounds; ++round) {
    for (const AttributeLeakage& a : reports[round].attributes) {
      matches[a.attribute].push_back(static_cast<double>(a.matches));
      if (a.mse.has_value()) mses[a.attribute].push_back(*a.mse);
    }
  }

  MethodResult result;
  result.method = method;
  for (size_t c = 0; c < m; ++c) {
    MethodAttributeResult entry;
    entry.attribute = c;
    entry.name = real.schema().attribute(c).name;
    entry.semantic = real.schema().attribute(c).semantic;
    entry.covered = covered[c];
    entry.mean_matches = Mean(matches[c]);
    entry.stddev_matches = StdDev(matches[c]);
    if (!mses[c].empty()) entry.mean_mse = Mean(mses[c]);
    result.attributes.push_back(std::move(entry));
  }
  return result;
}

Result<std::vector<MethodResult>> RunExperiment(
    const Relation& real, const MetadataPackage& metadata,
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config) {
  std::vector<MethodResult> out;
  Rng seeder(config.seed);
  for (GenerationMethod method : methods) {
    ExperimentConfig method_config = config;
    method_config.seed = seeder.Fork().engine()();
    METALEAK_ASSIGN_OR_RETURN(
        MethodResult r, RunMethod(real, metadata, method, method_config));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace metaleak
