#include "privacy/experiment.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/math_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "generation/cfd_generator.h"
#include "generation/generation_engine.h"

namespace metaleak {

std::string GenerationMethodToString(GenerationMethod method) {
  switch (method) {
    case GenerationMethod::kRandom:
      return "Random Generation";
    case GenerationMethod::kFd:
      return "Functional Dep";
    case GenerationMethod::kAfd:
      return "Approximate FD";
    case GenerationMethod::kNd:
      return "Numerical Dep";
    case GenerationMethod::kOd:
      return "Order Dep";
    case GenerationMethod::kDd:
      return "Differential Dep";
    case GenerationMethod::kOfd:
      return "Ordered FD";
    case GenerationMethod::kCfd:
      return "Conditional FD";
    case GenerationMethod::kFull:
      return "Full Package";
  }
  return "unknown";
}

namespace {

GenerationOptions OptionsForMethod(GenerationMethod method) {
  GenerationOptions out;
  switch (method) {
    case GenerationMethod::kRandom:
      out.ignore_dependencies = true;
      break;
    case GenerationMethod::kFd:
      out.allowed_kinds = {DependencyKind::kFunctional};
      break;
    case GenerationMethod::kAfd:
      out.allowed_kinds = {DependencyKind::kApproximateFunctional};
      break;
    case GenerationMethod::kNd:
      out.allowed_kinds = {DependencyKind::kNumerical};
      break;
    case GenerationMethod::kOd:
      out.allowed_kinds = {DependencyKind::kOrder};
      break;
    case GenerationMethod::kDd:
      out.allowed_kinds = {DependencyKind::kDifferential};
      break;
    case GenerationMethod::kOfd:
      out.allowed_kinds = {DependencyKind::kOrderedFunctional};
      break;
    case GenerationMethod::kCfd:
      // Roots only; the CFD repair pass runs after generation.
      out.ignore_dependencies = true;
      break;
    case GenerationMethod::kFull:
      // Defaults: every disclosed dependency class drives generation —
      // the exact options SimulateReconstruction uses.
      break;
  }
  return out;
}

}  // namespace

Result<double> RiskMeasureStats::MeanFor(size_t attribute) const {
  if (attribute >= mean.size()) {
    return Status::OutOfRange("no measure cell for attribute " +
                              std::to_string(attribute));
  }
  return mean[attribute];
}

Result<RiskMeasureStats> MethodResult::ForMeasure(
    const std::string& estimator, const std::string& measure) const {
  for (const RiskMeasureStats& ms : measures) {
    if (ms.estimator == estimator && ms.measure == measure) return ms;
  }
  return Status::OutOfRange("no measure column " + estimator + "/" +
                            measure);
}

Result<MethodAttributeResult> MethodResult::ForAttribute(
    size_t attribute) const {
  // Results hold attribute i at index i; answer from the index and keep
  // the scan only for hand-assembled results.
  if (attribute < attributes.size() &&
      attributes[attribute].attribute == attribute) {
    return attributes[attribute];
  }
  for (const MethodAttributeResult& a : attributes) {
    if (a.attribute == attribute) return a;
  }
  return Status::OutOfRange("no result for attribute " +
                            std::to_string(attribute));
}

// Everything one method's rounds share, resolved before any RNG draw:
// the generation context, the CFD chase plan, the bound risk estimators
// (the match-rate estimator owns the fused Def 2.2/2.3 evaluator), and
// the decision which path runs. The plan is RNG-independent, so `covered`
// comes from it up front and every round — including round 0 — fans out.
struct ExperimentEngine::MethodPlan {
  GenerationOptions gen_options;
  std::optional<GenerationContext> ctx;
  std::optional<EncodedCfdPlan> cfd_plan;
  /// The config's registry (or the default), plus one bound instance
  /// per estimator in registry order — match-rate first.
  const RiskEstimatorRegistry* registry = nullptr;
  std::vector<std::unique_ptr<BoundRiskEstimator>> bound;
  /// Measure-axis offset of each estimator's cell block, and the total
  /// measure count across the registry.
  std::vector<size_t> measure_offset;
  size_t total_measures = 0;
  bool use_code = false;
  std::vector<bool> covered;

  /// The fused Def 2.2/2.3 context, owned by the bound match-rate
  /// estimator.
  const EncodedLeakageContext* leakage_ctx() const {
    return bound.empty() ? nullptr : bound.front()->leakage_context();
  }
};

ExperimentEngine::ExperimentEngine(const Relation& real,
                                   const MetadataPackage& metadata)
    : real_(&real),
      metadata_(&metadata),
      owned_encoding_(EncodedRelation::Encode(real)),
      encoded_real_(&*owned_encoding_) {}

ExperimentEngine::ExperimentEngine(const EncodedRelation& encoded,
                                   const MetadataPackage& metadata)
    : real_(encoded.source()),
      metadata_(&metadata),
      encoded_real_(&encoded) {
  METALEAK_DCHECK(real_ != nullptr);
}

Result<ExperimentEngine::MethodPlan> ExperimentEngine::PlanFor(
    GenerationMethod method, const ExperimentConfig& config) const {
  MethodPlan plan;
  plan.gen_options = OptionsForMethod(method);
  METALEAK_ASSIGN_OR_RETURN(
      GenerationContext ctx,
      GenerationContext::Build(*metadata_, plan.gen_options));
  plan.ctx.emplace(std::move(ctx));

  const size_t m = real_->num_columns();
  plan.covered.assign(m, method == GenerationMethod::kRandom ||
                             method == GenerationMethod::kFull);
  if (method == GenerationMethod::kCfd) {
    for (const ConditionalFd& cfd : metadata_->conditional_fds) {
      if (cfd.rhs < m) plan.covered[cfd.rhs] = true;
    }
  } else if (method != GenerationMethod::kRandom &&
             method != GenerationMethod::kFull) {
    for (const GenerationStep& step : plan.ctx->plan().steps()) {
      plan.covered[step.attribute] = step.via.has_value();
    }
  }

  plan.use_code = !config.use_value_path && plan.ctx->encodable();
  if (plan.use_code && method == GenerationMethod::kCfd) {
    METALEAK_ASSIGN_OR_RETURN(
        EncodedCfdPlan cfd_plan,
        BuildEncodedCfdPlan(metadata_->conditional_fds, plan.ctx->domains(),
                            plan.ctx->kinds()));
    if (cfd_plan.supported()) {
      plan.cfd_plan.emplace(std::move(cfd_plan));
    } else {
      plan.use_code = false;
    }
  }
  plan.registry = config.estimators != nullptr
                      ? config.estimators
                      : &RiskEstimatorRegistry::Default();
  if (plan.registry->estimators().empty() ||
      plan.registry->estimators().front()->name() !=
          MatchRateEstimator::Instance().name()) {
    return Status::Invalid(
        "risk estimator registry must lead with match_rate");
  }
  RiskContext rctx;
  rctx.real = encoded_real_;
  rctx.syn_schema = &plan.ctx->schema();
  rctx.domains = &plan.ctx->domains();
  rctx.metadata = metadata_;
  rctx.leakage = config.leakage;
  for (const RiskEstimator* est : plan.registry->estimators()) {
    METALEAK_ASSIGN_OR_RETURN(std::unique_ptr<BoundRiskEstimator> bound,
                              est->Bind(rctx));
    plan.measure_offset.push_back(plan.total_measures);
    plan.total_measures += est->measures().size();
    plan.bound.push_back(std::move(bound));
  }
  if (plan.use_code) {
    const EncodedLeakageContext* leakage_ctx = plan.leakage_ctx();
    if (leakage_ctx == nullptr || !leakage_ctx->supported()) {
      plan.use_code = false;
    }
  }
  return plan;
}

Result<MethodResult> ExperimentEngine::Run(
    GenerationMethod method, const ExperimentConfig& config) const {
  if (config.rounds == 0) {
    return Status::Invalid("experiment needs at least one round");
  }
  METALEAK_ASSIGN_OR_RETURN(MethodPlan plan, PlanFor(method, config));
  const size_t m = real_->num_columns();

  // Per-round seeds drawn up front so the outcome is identical for any
  // thread count; recorded in the result so any round can be replayed.
  Rng rng(config.seed);
  std::vector<uint64_t> round_seeds;
  round_seeds.reserve(config.rounds);
  for (size_t round = 0; round < config.rounds; ++round) {
    round_seeds.push_back(rng.ForkSeed());
  }

  // rounds x total_measures x m measure cells; both paths fill the same
  // array, and the Welford fold below walks it in ascending round
  // order, so the aggregate is bit-identical across paths and thread
  // counts. The match-rate estimator's cells carry exactly the values
  // the fused scan's AttributeRoundStats did.
  const size_t total = plan.total_measures;
  std::vector<RiskMeasureCell> cells(config.rounds * total * m);
  auto run_round_code = [&](size_t round) -> Status {
    Rng round_rng(round_seeds[round]);
    thread_local EncodedBatch batch;
    METALEAK_RETURN_NOT_OK(
        GenerateEncoded(*plan.ctx, real_->num_rows(), &round_rng, &batch));
    if (plan.cfd_plan.has_value()) {
      METALEAK_RETURN_NOT_OK(
          ApplyCfdsEncoded(*plan.cfd_plan, &batch, &round_rng));
    }
    RiskMeasureCell* round_cells = cells.data() + round * total * m;
    for (size_t e = 0; e < plan.bound.size(); ++e) {
      METALEAK_RETURN_NOT_OK(plan.bound[e]->Evaluate(
          batch, round_cells + plan.measure_offset[e] * m));
    }
    return Status::OK();
  };
  auto run_round_value = [&](size_t round) -> Status {
    Rng round_rng(round_seeds[round]);
    METALEAK_ASSIGN_OR_RETURN(
        GenerationOutcome outcome,
        GenerateSyntheticValuePath(*metadata_, real_->num_rows(), &round_rng,
                                   plan.gen_options));
    if (method == GenerationMethod::kCfd) {
      METALEAK_ASSIGN_OR_RETURN(
          outcome.relation,
          ApplyCfds(outcome.relation, metadata_->conditional_fds,
                    plan.ctx->domains(), &round_rng));
    }
    METALEAK_ASSIGN_OR_RETURN(
        LeakageReport report,
        EvaluateLeakage(*real_, outcome.relation, config.leakage));
    // The value path fills only the match-rate columns (other
    // estimators consume encoded batches); their cells stay absent and
    // the fold marks them inactive.
    RiskMeasureCell* round_cells = cells.data() + round * total * m;
    for (const AttributeLeakage& a : report.attributes) {
      round_cells[MatchRateEstimator::kMatchesIndex * m + a.attribute] =
          RiskMeasureCell{static_cast<double>(a.matches), true};
      if (a.mse.has_value()) {
        round_cells[MatchRateEstimator::kMseIndex * m + a.attribute] =
            RiskMeasureCell{*a.mse, true};
      }
    }
    return Status::OK();
  };
  auto run_round = [&](size_t round) -> Status {
    return plan.use_code ? run_round_code(round) : run_round_value(round);
  };

  size_t threads = config.threads;
  if (threads == 0) threads = GlobalThreadCount();
  threads = std::min(threads, config.rounds);
  if (threads <= 1) {
    for (size_t round = 0; round < config.rounds; ++round) {
      METALEAK_RETURN_NOT_OK(run_round(round));
    }
  } else {
    std::vector<Status> round_status(config.rounds);
    ParallelFor(
        0, config.rounds, 1,
        [&](size_t round) { round_status[round] = run_round(round); },
        threads);
    for (size_t round = 0; round < config.rounds; ++round) {
      METALEAK_RETURN_NOT_OK(round_status[round]);
    }
  }

  MethodResult result;
  result.method = method;
  result.round_seeds = std::move(round_seeds);

  // Fold every measure column through Welford in ascending round order —
  // the exact fold the fused scan used for matches/MSE, now applied
  // uniformly to all registered estimators. Absent cells are skipped,
  // like the has_mse flag was.
  result.measures.reserve(total);
  for (size_t e = 0; e < plan.bound.size(); ++e) {
    const RiskEstimator* est = plan.registry->estimators()[e];
    const bool active = plan.use_code || e == 0;
    for (size_t j = 0; j < est->measures().size(); ++j) {
      RiskMeasureStats ms;
      ms.estimator = est->name();
      ms.measure = est->measures()[j].key;
      ms.active = active;
      ms.mean.assign(m, 0.0);
      ms.stddev.assign(m, 0.0);
      ms.rounds.assign(m, 0);
      if (active) {
        const size_t off = (plan.measure_offset[e] + j) * m;
        for (size_t c = 0; c < m; ++c) {
          WelfordAccumulator acc;
          for (size_t round = 0; round < config.rounds; ++round) {
            const RiskMeasureCell& cell = cells[round * total * m + off + c];
            if (cell.present) acc.Add(cell.value);
          }
          ms.mean[c] = acc.mean();
          ms.stddev[c] = acc.stddev();
          ms.rounds[c] = acc.count();
        }
      }
      result.measures.push_back(std::move(ms));
    }
  }

  // Legacy per-attribute fields read off the match-rate columns — the
  // same accumulators, so the two views are bit-identical by
  // construction.
  const RiskMeasureStats& matches_col =
      result.measures[MatchRateEstimator::kMatchesIndex];
  const RiskMeasureStats& mse_col =
      result.measures[MatchRateEstimator::kMseIndex];
  result.attributes.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    MethodAttributeResult entry;
    entry.attribute = c;
    entry.name = real_->schema().attribute(c).name;
    entry.semantic = real_->schema().attribute(c).semantic;
    entry.covered = plan.covered[c];
    entry.rows_compared =
        real_->num_rows() - encoded_real_->dictionary(c).null_count();
    entry.mean_matches = matches_col.mean[c];
    entry.stddev_matches = matches_col.stddev[c];
    if (mse_col.rounds[c] > 0) entry.mean_mse = mse_col.mean[c];
    result.attributes.push_back(std::move(entry));
  }
  return result;
}

Result<std::vector<MethodResult>> ExperimentEngine::RunAll(
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config) const {
  std::vector<MethodResult> out;
  out.reserve(methods.size());
  Rng seeder(config.seed);
  for (GenerationMethod method : methods) {
    ExperimentConfig method_config = config;
    method_config.seed = seeder.Fork().engine()();
    METALEAK_ASSIGN_OR_RETURN(MethodResult r, Run(method, method_config));
    out.push_back(std::move(r));
  }
  return out;
}

Result<LeakageReport> ExperimentEngine::ReplayRound(
    GenerationMethod method, uint64_t round_seed,
    const ExperimentConfig& config) const {
  METALEAK_ASSIGN_OR_RETURN(MethodPlan plan, PlanFor(method, config));
  Rng round_rng(round_seed);
  if (plan.use_code) {
    EncodedBatch batch;
    METALEAK_RETURN_NOT_OK(
        GenerateEncoded(*plan.ctx, real_->num_rows(), &round_rng, &batch));
    if (plan.cfd_plan.has_value()) {
      METALEAK_RETURN_NOT_OK(
          ApplyCfdsEncoded(*plan.cfd_plan, &batch, &round_rng));
    }
    return plan.leakage_ctx()->EvaluateReport(batch);
  }
  METALEAK_ASSIGN_OR_RETURN(
      GenerationOutcome outcome,
      GenerateSyntheticValuePath(*metadata_, real_->num_rows(), &round_rng,
                                 plan.gen_options));
  if (method == GenerationMethod::kCfd) {
    METALEAK_ASSIGN_OR_RETURN(
        outcome.relation,
        ApplyCfds(outcome.relation, metadata_->conditional_fds,
                  plan.ctx->domains(), &round_rng));
  }
  return EvaluateLeakage(*real_, outcome.relation, config.leakage);
}

Result<std::vector<RoundMeasureValues>>
ExperimentEngine::ReplayRoundMeasures(GenerationMethod method,
                                      uint64_t round_seed,
                                      const ExperimentConfig& config) const {
  METALEAK_ASSIGN_OR_RETURN(MethodPlan plan, PlanFor(method, config));
  const size_t m = real_->num_columns();
  Rng round_rng(round_seed);
  std::vector<RiskMeasureCell> cells(plan.total_measures * m);
  size_t emitted = plan.use_code ? plan.bound.size() : 1;
  if (plan.use_code) {
    EncodedBatch batch;
    METALEAK_RETURN_NOT_OK(
        GenerateEncoded(*plan.ctx, real_->num_rows(), &round_rng, &batch));
    if (plan.cfd_plan.has_value()) {
      METALEAK_RETURN_NOT_OK(
          ApplyCfdsEncoded(*plan.cfd_plan, &batch, &round_rng));
    }
    for (size_t e = 0; e < plan.bound.size(); ++e) {
      METALEAK_RETURN_NOT_OK(plan.bound[e]->Evaluate(
          batch, cells.data() + plan.measure_offset[e] * m));
    }
  } else {
    METALEAK_ASSIGN_OR_RETURN(
        GenerationOutcome outcome,
        GenerateSyntheticValuePath(*metadata_, real_->num_rows(), &round_rng,
                                   plan.gen_options));
    if (method == GenerationMethod::kCfd) {
      METALEAK_ASSIGN_OR_RETURN(
          outcome.relation,
          ApplyCfds(outcome.relation, metadata_->conditional_fds,
                    plan.ctx->domains(), &round_rng));
    }
    METALEAK_ASSIGN_OR_RETURN(
        LeakageReport report,
        EvaluateLeakage(*real_, outcome.relation, config.leakage));
    for (const AttributeLeakage& a : report.attributes) {
      cells[MatchRateEstimator::kMatchesIndex * m + a.attribute] =
          RiskMeasureCell{static_cast<double>(a.matches), true};
      if (a.mse.has_value()) {
        cells[MatchRateEstimator::kMseIndex * m + a.attribute] =
            RiskMeasureCell{*a.mse, true};
      }
    }
  }
  std::vector<RoundMeasureValues> out;
  for (size_t e = 0; e < emitted; ++e) {
    const RiskEstimator* est = plan.registry->estimators()[e];
    for (size_t j = 0; j < est->measures().size(); ++j) {
      RoundMeasureValues values;
      values.estimator = est->name();
      values.measure = est->measures()[j].key;
      const size_t off = (plan.measure_offset[e] + j) * m;
      values.cells.assign(cells.begin() + off, cells.begin() + off + m);
      out.push_back(std::move(values));
    }
  }
  return out;
}

Result<MethodResult> RunMethod(const Relation& real,
                               const MetadataPackage& metadata,
                               GenerationMethod method,
                               const ExperimentConfig& config) {
  ExperimentEngine engine(real, metadata);
  return engine.Run(method, config);
}

Result<std::vector<MethodResult>> RunExperiment(
    const Relation& real, const MetadataPackage& metadata,
    const std::vector<GenerationMethod>& methods,
    const ExperimentConfig& config) {
  ExperimentEngine engine(real, metadata);
  return engine.RunAll(methods, config);
}

}  // namespace metaleak
