#include "service/relation_snapshot.h"

#include <utility>

namespace metaleak {

Result<std::shared_ptr<const RelationSnapshot>>
RelationSnapshot::FromRelation(const Relation& relation,
                               const DiscoveryOptions& discovery,
                               const LeakageOptions& leakage,
                               DiscoveryMemo* memo) {
  if (relation.num_rows() == 0 || relation.num_columns() == 0) {
    return Status::Invalid("cannot snapshot an empty relation");
  }
  auto snap = std::shared_ptr<RelationSnapshot>(new RelationSnapshot());
  snap->relation_ = std::make_unique<Relation>(relation);
  snap->encoded_ = std::make_unique<EncodedRelation>(
      EncodedRelation::Encode(*snap->relation_));
  snap->cache_ = std::make_unique<PliCache>(snap->encoded_.get());
  METALEAK_RETURN_NOT_OK(
      snap->Finish(discovery, leakage,
                   DeltaTouch::None(snap->encoded_->num_columns()), memo));
  return std::shared_ptr<const RelationSnapshot>(std::move(snap));
}

Result<std::shared_ptr<const RelationSnapshot>>
RelationSnapshot::FromPublished(EncodedRelation published,
                                std::vector<PositionListIndex> singles,
                                const DiscoveryOptions& discovery,
                                const LeakageOptions& leakage,
                                const DeltaTouch& touch,
                                DiscoveryMemo* memo) {
  if (published.num_rows() == 0 || published.num_columns() == 0) {
    return Status::Invalid("cannot snapshot an empty relation");
  }
  auto snap = std::shared_ptr<RelationSnapshot>(new RelationSnapshot());
  snap->encoded_ =
      std::make_unique<EncodedRelation>(std::move(published));
  // The publish carries no backing Relation; materialize one (CFD
  // discovery, the value-path fallback, and the attack pipeline read raw
  // values) and point the encoding at it.
  METALEAK_ASSIGN_OR_RETURN(Relation decoded, snap->encoded_->Decode());
  snap->relation_ = std::make_unique<Relation>(std::move(decoded));
  snap->encoded_->set_source(snap->relation_.get());
  snap->cache_ = std::make_unique<PliCache>(snap->encoded_.get(),
                                            std::move(singles));
  METALEAK_RETURN_NOT_OK(snap->Finish(discovery, leakage, touch, memo));
  return std::shared_ptr<const RelationSnapshot>(std::move(snap));
}

Status RelationSnapshot::Finish(const DiscoveryOptions& discovery,
                                const LeakageOptions& leakage,
                                const DeltaTouch& touch,
                                DiscoveryMemo* memo) {
  fingerprint_ = encoded_->Fingerprint();
  METALEAK_ASSIGN_OR_RETURN(
      profile_,
      ProfileRelationIncremental(cache_.get(), discovery, touch, memo));
  METALEAK_ASSIGN_OR_RETURN(
      leakage_,
      ComputeLeakageProfile(*encoded_, profile_.metadata, leakage));
  return Status::OK();
}

}  // namespace metaleak
