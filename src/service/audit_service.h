// AuditService: a long-lived metadata-audit service over the
// snapshot/delta split.
//
// The one-shot entry points (RunAudit, AnalyzeTupleRisk, RunExperiment)
// re-encode and re-profile the relation on every call. The service keeps
// that work alive instead: Register() encodes once, builds an immutable
// RelationSnapshot, and caches it by encoding fingerprint — a second
// registration of equal content is a snapshot-cache hit that skips
// encoding-downstream work entirely. Queries (Audit / MeasureLeakage /
// TupleRisk) run against the session's current snapshot and can be
// issued concurrently from many threads; they fan out over the shared
// thread pool and allocate per-request state only (the Monte-Carlo
// engines keep per-thread arenas internally).
//
// The mutable half: ApplyBatch() feeds a delete+insert batch through the
// session's DeltaRelation (append-capable dictionaries, side
// order-index), maintains the single-attribute CSR PLIs in place,
// publishes a canonical snapshot — bit-identical to a from-scratch
// rebuild — and re-profiles via targeted revalidation, re-checking only
// dependencies whose support sets the batch touched. Each batch returns
// the leakage delta: expected-match drift per attribute, attributes
// crossing the >= 1 leak threshold, dependencies the batch created or
// destroyed, and drift in every registered risk-estimator measure the
// snapshot profiles carry (entropy / conditional-entropy bounds).
#ifndef METALEAK_SERVICE_AUDIT_SERVICE_H_
#define METALEAK_SERVICE_AUDIT_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/delta_relation.h"
#include "data/relation.h"
#include "discovery/revalidate.h"
#include "partition/pli_maintenance.h"
#include "privacy/audit.h"
#include "privacy/experiment.h"
#include "privacy/leakage_delta.h"
#include "privacy/tuple_risk.h"
#include "service/relation_snapshot.h"

namespace metaleak {

struct ServiceOptions {
  /// Profile configuration shared by every snapshot the service builds.
  /// (AuditOptions::discovery is ignored by Audit() — the profile is
  /// precomputed at registration / batch time.)
  DiscoveryOptions discovery;
  /// Epsilon policy for the analytical leakage profiles and deltas.
  LeakageOptions leakage;
  /// Snapshot-cache capacity; least-recently-used entries are evicted
  /// beyond it. Sessions keep their current snapshot alive regardless.
  size_t max_cached_snapshots = 8;
};

struct ServiceStats {
  uint64_t snapshot_hits = 0;
  uint64_t snapshot_misses = 0;
  uint64_t snapshot_evictions = 0;
};

using SessionId = uint64_t;

class AuditService {
 public:
  explicit AuditService(ServiceOptions options = {});
  ~AuditService();

  AuditService(const AuditService&) = delete;
  AuditService& operator=(const AuditService&) = delete;

  /// Registers a relation and returns a session handle. The relation is
  /// copied (the caller's object need not outlive the service). Content
  /// already registered — equal encoding fingerprint — reuses the cached
  /// snapshot under the cache's single-flight discipline: concurrent
  /// registrations of equal content build once.
  Result<SessionId> Register(const Relation& relation);

  /// The session's current immutable snapshot. Safe to hold across
  /// ApplyBatch calls; it simply stays on the superseded version.
  Result<std::shared_ptr<const RelationSnapshot>> Snapshot(SessionId id);

  /// Applies one delete+insert batch, publishes a new canonical snapshot
  /// (bit-identical to a from-scratch rebuild of the post-batch rows),
  /// and returns what the batch changed about the leakage story.
  /// Batches against one session are serialized; queries keep running
  /// against the previous snapshot meanwhile.
  Result<LeakageDelta> ApplyBatch(SessionId id, const RowBatch& batch);

  /// Full audit of the current snapshot — the warm path of RunAudit: no
  /// re-encoding, no re-discovery, shared subset partitions. Cache
  /// counters (PLI + snapshot) are filled into the result.
  Result<AuditResult> Audit(SessionId id, const AuditOptions& options = {});

  /// Monte-Carlo leakage of one generation method against the current
  /// snapshot (Defs 2.2/2.3, Tables III/IV semantics).
  Result<MethodResult> MeasureLeakage(SessionId id, GenerationMethod method,
                                      const ExperimentConfig& config = {});

  /// Per-tuple reconstruction-risk attack against the current snapshot.
  Result<TupleRiskReport> TupleRisk(SessionId id,
                                    const TupleRiskOptions& options = {});

  ServiceStats stats() const;

 private:
  /// Snapshot-cache slot: `once` gives registration the same
  /// single-flight discipline PliCache uses per partition.
  struct CacheEntry {
    std::once_flag once;
    std::shared_ptr<const RelationSnapshot> snapshot;
    Status status = Status::OK();
    uint64_t last_used = 0;
  };

  struct Session {
    Session(std::shared_ptr<const RelationSnapshot> snap,
            std::unique_ptr<DiscoveryMemo> m)
        : current(std::move(snap)),
          delta(current->encoding()),
          plis(current->encoding()),
          memo(std::move(m)) {}

    std::mutex mutex;
    std::shared_ptr<const RelationSnapshot> current;
    DeltaRelation delta;
    PliMaintenance plis;
    std::unique_ptr<DiscoveryMemo> memo;
  };

  Result<std::shared_ptr<Session>> FindSession(SessionId id);
  Result<std::shared_ptr<const RelationSnapshot>> CurrentSnapshot(
      SessionId id);
  /// Inserts (or refreshes) a cache slot for an already-built snapshot
  /// and applies the LRU bound.
  void CacheSnapshot(std::shared_ptr<const RelationSnapshot> snapshot);
  /// Must hold cache_mutex_. Evicts LRU entries beyond capacity.
  void EvictLocked();

  ServiceOptions options_;

  std::mutex cache_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<CacheEntry>> cache_;
  uint64_t lru_tick_ = 0;

  std::mutex sessions_mutex_;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  SessionId next_session_ = 1;

  std::atomic<uint64_t> snapshot_hits_{0};
  std::atomic<uint64_t> snapshot_misses_{0};
  std::atomic<uint64_t> snapshot_evictions_{0};
};

}  // namespace metaleak

#endif  // METALEAK_SERVICE_AUDIT_SERVICE_H_
