// RelationSnapshot: the immutable half of the snapshot/delta split, as a
// shareable bundle.
//
// A snapshot owns everything a query needs — the decoded relation, its
// canonical encoding, a thread-safe partition cache seeded with the
// single-attribute PLIs, the discovered dependency profile, and the
// analytical leakage profile (including the batch-independent risk
// estimator measures — entropy and conditional-entropy bounds — cached
// by ComputeLeakageProfile). Once built it is never mutated; concurrent
// audit / leakage / attack queries all read the same bundle (the PliCache
// mutates internally but is thread-safe and single-flight). The service
// layer hands snapshots out by shared_ptr, so a session can move on to a
// newer snapshot while in-flight queries finish against the old one.
#ifndef METALEAK_SERVICE_RELATION_SNAPSHOT_H_
#define METALEAK_SERVICE_RELATION_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/discovery_engine.h"
#include "discovery/revalidate.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"
#include "privacy/leakage_delta.h"

namespace metaleak {

class RelationSnapshot {
 public:
  /// Builds a snapshot from a caller's relation: copies the rows, encodes
  /// them, profiles through `memo` (recording verdicts for later
  /// incremental rounds), and evaluates the analytical leakage model.
  static Result<std::shared_ptr<const RelationSnapshot>> FromRelation(
      const Relation& relation, const DiscoveryOptions& discovery,
      const LeakageOptions& leakage, DiscoveryMemo* memo);

  /// Builds a snapshot from a DeltaRelation publish: takes the canonical
  /// encoding, materializes (and owns) its decoded relation, seeds the
  /// partition cache with the incrementally maintained single-attribute
  /// PLIs, and re-profiles via targeted revalidation — only candidates
  /// whose support sets `touch` reached are re-validated.
  static Result<std::shared_ptr<const RelationSnapshot>> FromPublished(
      EncodedRelation published, std::vector<PositionListIndex> singles,
      const DiscoveryOptions& discovery, const LeakageOptions& leakage,
      const DeltaTouch& touch, DiscoveryMemo* memo);

  const Relation& relation() const { return *relation_; }
  const EncodedRelation& encoding() const { return *encoded_; }
  /// Thread-safe; intentionally non-const through a const snapshot (the
  /// cache memoizes internally but never changes observable state).
  PliCache& pli_cache() const { return *cache_; }
  const DiscoveryReport& profile() const { return profile_; }
  const LeakageProfile& leakage() const { return leakage_; }
  uint64_t fingerprint() const { return fingerprint_; }
  size_t num_rows() const { return encoded_->num_rows(); }
  size_t num_columns() const { return encoded_->num_columns(); }

 private:
  RelationSnapshot() = default;

  /// Shared tail of both factories: profile + leakage over the already-
  /// wired relation/encoding/cache members.
  Status Finish(const DiscoveryOptions& discovery,
                const LeakageOptions& leakage, const DeltaTouch& touch,
                DiscoveryMemo* memo);

  std::unique_ptr<Relation> relation_;        // owns the rows
  std::unique_ptr<EncodedRelation> encoded_;  // source() == relation_.get()
  std::unique_ptr<PliCache> cache_;
  DiscoveryReport profile_;
  LeakageProfile leakage_;
  uint64_t fingerprint_ = 0;
};

}  // namespace metaleak

#endif  // METALEAK_SERVICE_RELATION_SNAPSHOT_H_
