#include "service/audit_service.h"

#include <algorithm>
#include <utility>

namespace metaleak {

AuditService::AuditService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.max_cached_snapshots == 0) options_.max_cached_snapshots = 1;
}

AuditService::~AuditService() = default;

Result<SessionId> AuditService::Register(const Relation& relation) {
  if (relation.num_rows() == 0 || relation.num_columns() == 0) {
    return Status::Invalid("cannot register an empty relation");
  }
  // Encode against the caller's relation just to key the cache; the
  // snapshot (on a miss) re-encodes its own copy of the rows.
  const uint64_t fingerprint =
      EncodedRelation::Encode(relation).Fingerprint();

  std::shared_ptr<CacheEntry> entry;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(fingerprint);
    if (it == cache_.end()) {
      it = cache_.emplace(fingerprint, std::make_shared<CacheEntry>())
               .first;
      inserted = true;
    }
    entry = it->second;
    entry->last_used = ++lru_tick_;
    if (inserted) EvictLocked();
  }
  if (inserted) {
    snapshot_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  // Single-flight build: losers wait here and share the winner's
  // snapshot. Only the builder's session inherits the recorded verdict
  // memo; other sessions start with an empty memo and warm up on their
  // first batch.
  auto memo = std::make_unique<DiscoveryMemo>();
  std::call_once(entry->once, [&] {
    Result<std::shared_ptr<const RelationSnapshot>> built =
        RelationSnapshot::FromRelation(relation, options_.discovery,
                                       options_.leakage, memo.get());
    if (built.ok()) {
      entry->snapshot = std::move(*built);
    } else {
      entry->status = built.status();
    }
  });
  if (!entry->status.ok()) {
    // Drop the poisoned slot so a later registration can retry.
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(fingerprint);
    if (it != cache_.end() && it->second == entry) cache_.erase(it);
    return entry->status;
  }

  auto session = std::make_shared<Session>(entry->snapshot, std::move(memo));
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  SessionId id = next_session_++;
  sessions_.emplace(id, std::move(session));
  return id;
}

Result<std::shared_ptr<AuditService::Session>> AuditService::FindSession(
    SessionId id) {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::KeyError("unknown audit session");
  }
  return it->second;
}

Result<std::shared_ptr<const RelationSnapshot>>
AuditService::CurrentSnapshot(SessionId id) {
  METALEAK_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  return session->current;
}

Result<std::shared_ptr<const RelationSnapshot>> AuditService::Snapshot(
    SessionId id) {
  return CurrentSnapshot(id);
}

Result<LeakageDelta> AuditService::ApplyBatch(SessionId id,
                                              const RowBatch& batch) {
  METALEAK_ASSIGN_OR_RETURN(std::shared_ptr<Session> session,
                            FindSession(id));
  std::lock_guard<std::mutex> lock(session->mutex);
  if (batch.empty()) {
    LeakageDelta none;
    none.expected_matches_delta.assign(session->delta.num_columns(), 0.0);
    return none;
  }
  METALEAK_ASSIGN_OR_RETURN(BatchEffects effects,
                            session->delta.ApplyBatch(batch));
  if (effects.remap.rows_after == 0) {
    return Status::Invalid("batch would empty the relation");
  }
  DeltaTouch touch = DeltaTouch::None(session->delta.num_columns());
  touch.Merge(effects);

  session->plis.ApplyBatch(effects);
  PublishResult publish = session->delta.PublishCanonical();
  session->plis.RenumberCodes(publish.code_remap);

  std::vector<PositionListIndex> singles;
  singles.reserve(session->plis.num_columns());
  for (size_t c = 0; c < session->plis.num_columns(); ++c) {
    singles.push_back(session->plis.ToPli(c));
  }

  METALEAK_ASSIGN_OR_RETURN(
      std::shared_ptr<const RelationSnapshot> next,
      RelationSnapshot::FromPublished(
          std::move(publish.encoded), std::move(singles),
          options_.discovery, options_.leakage, touch,
          session->memo.get()));

  METALEAK_ASSIGN_OR_RETURN(
      LeakageDelta delta,
      DiffLeakageProfiles(session->current->leakage(), next->leakage()));
  CacheSnapshot(next);
  session->current = std::move(next);
  return delta;
}

Result<AuditResult> AuditService::Audit(SessionId id,
                                        const AuditOptions& options) {
  METALEAK_ASSIGN_OR_RETURN(std::shared_ptr<const RelationSnapshot> snap,
                            CurrentSnapshot(id));
  METALEAK_ASSIGN_OR_RETURN(
      AuditResult result,
      RunAuditProfiled(snap->pli_cache(), snap->profile(), options));
  ServiceStats s = stats();
  if (!result.cache_stats.has_value()) result.cache_stats.emplace();
  result.cache_stats->snapshot_hits = s.snapshot_hits;
  result.cache_stats->snapshot_misses = s.snapshot_misses;
  result.cache_stats->snapshot_evictions = s.snapshot_evictions;
  return result;
}

Result<MethodResult> AuditService::MeasureLeakage(
    SessionId id, GenerationMethod method, const ExperimentConfig& config) {
  METALEAK_ASSIGN_OR_RETURN(std::shared_ptr<const RelationSnapshot> snap,
                            CurrentSnapshot(id));
  ExperimentEngine engine(snap->encoding(), snap->profile().metadata);
  return engine.Run(method, config);
}

Result<TupleRiskReport> AuditService::TupleRisk(
    SessionId id, const TupleRiskOptions& options) {
  METALEAK_ASSIGN_OR_RETURN(std::shared_ptr<const RelationSnapshot> snap,
                            CurrentSnapshot(id));
  return AnalyzeTupleRisk(snap->relation(), snap->profile().metadata,
                          options);
}

ServiceStats AuditService::stats() const {
  ServiceStats s;
  s.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  s.snapshot_misses = snapshot_misses_.load(std::memory_order_relaxed);
  s.snapshot_evictions = snapshot_evictions_.load(std::memory_order_relaxed);
  return s;
}

void AuditService::CacheSnapshot(
    std::shared_ptr<const RelationSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(snapshot->fingerprint());
  if (it == cache_.end()) {
    it = cache_
             .emplace(snapshot->fingerprint(),
                      std::make_shared<CacheEntry>())
             .first;
    // Fire the slot's once with the snapshot already built, inside the
    // lambda: a concurrent Register's passive call_once synchronizes
    // with the lambda's completion, so it must observe the assignment.
    std::shared_ptr<CacheEntry> entry = it->second;
    std::call_once(entry->once,
                   [&] { entry->snapshot = std::move(snapshot); });
  }
  it->second->last_used = ++lru_tick_;
  EvictLocked();
}

void AuditService::EvictLocked() {
  while (cache_.size() > options_.max_cached_snapshots) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (victim == cache_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) return;
    cache_.erase(victim);
    snapshot_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace metaleak
