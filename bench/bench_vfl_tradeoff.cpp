// E5 — the VFL utility-vs-privacy trade-off, run on the N-party
// federation topology.
//
// Three axes, all written to BENCH_vfl.json:
//
//   1. Topology parity gate: the 2-node full-disclosure topology must
//      reproduce the pre-refactor two-party RunScenario orchestration
//      bit-identically ("topology_parity": "ok"; any disagreement exits
//      non-zero).
//   2. Policy Pareto sweep on the fintech federation: utility (joint
//      model accuracy) vs leakage (coalition reconstruction match rate)
//      per candidate MetadataPolicy. The acceptance number is
//      "pareto_frontier_points" >= 3 with distinct trade-offs.
//   3. Coalition scaling: leakage as the attacker coalition grows from 1
//      to 3 parties in a fully-connected 4-party federation, plus
//      Align/train/attack wall-clock at 10k-50k rows.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/fintech.h"
#include "vfl/attack.h"
#include "vfl/logistic_regression.h"
#include "vfl/scenario.h"
#include "vfl/topology.h"

namespace metaleak {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// --- Axis 1: two-party parity gate --------------------------------------------

// The pre-refactor RunScenario orchestration, rebuilt from the two-party
// primitives it used. RunScenario itself now routes through
// FederationTopology; this is the golden reference it must match.
Result<ScenarioOutcome> ReferenceRunScenario(const Party& party_a,
                                             const Party& party_b,
                                             const ScenarioOptions& options) {
  ScenarioOutcome outcome;
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_a,
                            party_a.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(std::vector<PsiToken> tokens_b,
                            party_b.PsiTokens(options.psi_salt));
  METALEAK_ASSIGN_OR_RETURN(PsiResult psi,
                            IntersectTokens(tokens_a, tokens_b));
  outcome.intersection_size = psi.size();
  if (psi.size() == 0) return Status::Invalid("PSI intersection is empty");

  METALEAK_ASSIGN_OR_RETURN(Relation slice_a,
                            party_a.AlignedFeatures(psi.rows_a));
  METALEAK_ASSIGN_OR_RETURN(Relation slice_b,
                            party_b.AlignedFeatures(psi.rows_b));
  METALEAK_ASSIGN_OR_RETURN(
      size_t label_col,
      slice_a.schema().RequireIndex(options.label_attribute));
  std::vector<int> labels;
  for (size_t r = 0; r < slice_a.num_rows(); ++r) {
    const Value& v = slice_a.at(r, label_col);
    labels.push_back(
        !v.is_null() && v.is_numeric() && v.AsNumeric() >= 0.5 ? 1 : 0);
  }
  std::vector<size_t> a_cols;
  for (size_t c = 0; c < slice_a.num_columns(); ++c) {
    if (c != label_col) a_cols.push_back(c);
  }
  Relation features_a = slice_a.Project(a_cols);

  METALEAK_ASSIGN_OR_RETURN(
      VflModel joint, TrainVerticalLogisticRegression(features_a, slice_b,
                                                      labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(outcome.joint_accuracy,
                            Accuracy(joint, features_a, slice_b, labels));
  Schema const_schema(
      {{"__const", DataType::kInt64, SemanticType::kCategorical}});
  std::vector<std::vector<Value>> const_col(1);
  const_col[0].assign(features_a.num_rows(), Value::Int(0));
  METALEAK_ASSIGN_OR_RETURN(
      Relation const_b, Relation::Make(const_schema, std::move(const_col)));
  METALEAK_ASSIGN_OR_RETURN(
      VflModel solo, TrainVerticalLogisticRegression(features_a, const_b,
                                                     labels, options.train));
  METALEAK_ASSIGN_OR_RETURN(outcome.party_a_only_accuracy,
                            Accuracy(solo, features_a, const_b, labels));
  METALEAK_ASSIGN_OR_RETURN(
      MetadataPackage shared_b,
      party_b.ShareMetadata(DisclosureLevel::kWithRfds));
  METALEAK_ASSIGN_OR_RETURN(
      outcome.leakage_by_level,
      SweepDisclosureLevels(shared_b, slice_b, options.attack_seed));
  return outcome;
}

bool OutcomesBitIdentical(const ScenarioOutcome& a,
                          const ScenarioOutcome& b) {
  if (a.intersection_size != b.intersection_size ||
      a.joint_accuracy != b.joint_accuracy ||
      a.party_a_only_accuracy != b.party_a_only_accuracy ||
      a.leakage_by_level.size() != b.leakage_by_level.size()) {
    return false;
  }
  for (size_t i = 0; i < a.leakage_by_level.size(); ++i) {
    const AttackResult& x = a.leakage_by_level[i];
    const AttackResult& y = b.leakage_by_level[i];
    if (x.level != y.level || x.reconstructed != y.reconstructed ||
        x.leakage.attributes.size() != y.leakage.attributes.size()) {
      return false;
    }
    for (size_t c = 0; c < x.leakage.attributes.size(); ++c) {
      const AttributeLeakage& p = x.leakage.attributes[c];
      const AttributeLeakage& q = y.leakage.attributes[c];
      if (p.matches != q.matches || p.rows_compared != q.rows_compared ||
          p.match_rate != q.match_rate ||
          p.mse.has_value() != q.mse.has_value() ||
          (p.mse.has_value() && *p.mse != *q.mse)) {
        return false;
      }
    }
  }
  return true;
}

bool CheckTopologyParity() {
  datasets::FintechScenario s = datasets::Fintech();
  Party bank("bank", s.bank, "customer_id");
  Party ecom("ecommerce", s.ecommerce, "customer_id");
  ScenarioOptions options;
  options.train.epochs = 120;
  auto reference = ReferenceRunScenario(bank, ecom, options);
  auto topology = RunScenario(bank, ecom, options);
  if (!reference.ok() || !topology.ok()) {
    std::fprintf(stderr, "parity scenario failed: %s / %s\n",
                 reference.status().ToString().c_str(),
                 topology.status().ToString().c_str());
    return false;
  }
  return OutcomesBitIdentical(*reference, *topology);
}

// --- Axis 2: policy Pareto sweep ----------------------------------------------

std::vector<MetadataPolicy> CandidatePolicies() {
  std::vector<MetadataPolicy> policies;
  policies.push_back(MetadataPolicy::FullDisclosure());

  MetadataPolicy no_deps =
      MetadataPolicy::AtLevel(DisclosureLevel::kWithRfds, "suppress-deps");
  no_deps.transforms = {MetadataTransform::SuppressDependencies()};
  policies.push_back(no_deps);

  policies.push_back(MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "domains-only"));

  MetadataPolicy gen_weak = MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "generalize-weak");
  gen_weak.transforms = {MetadataTransform::GeneralizeDomains(0.5, 8)};
  policies.push_back(gen_weak);

  MetadataPolicy gen_strong = MetadataPolicy::AtLevel(
      DisclosureLevel::kNamesAndDomains, "generalize-strong");
  gen_strong.transforms = {MetadataTransform::GeneralizeDomains(2.0, 32, 4)};
  policies.push_back(gen_strong);

  MetadataPolicy dp = MetadataPolicy::AtLevel(
      DisclosureLevel::kWithDistributions, "dp-distributions");
  dp.transforms = {
      MetadataTransform::DpNoiseDistributions(0.5, 0xD15C105EULL, 0.05)};
  policies.push_back(dp);

  policies.push_back(
      MetadataPolicy::AtLevel(DisclosureLevel::kNames, "names-only"));
  return policies;
}

struct ParetoAxis {
  std::vector<ParetoPoint> points;
  size_t frontier_points = 0;
  size_t distinct_tradeoffs = 0;
};

Result<ParetoAxis> RunParetoSweep() {
  datasets::FintechFederationOptions data_options;
  data_options.population = 1500;
  datasets::FintechFederationScenario s =
      datasets::FintechFederation(data_options);

  FederationTopology topo;
  size_t bank = topo.AddParty(Party("bank", s.bank, "customer_id"));
  size_t ecom = topo.AddParty(Party("ecommerce", s.ecommerce, "customer_id"));
  size_t telco = topo.AddParty(Party("telco", s.telco, "customer_id"));
  METALEAK_RETURN_NOT_OK(
      topo.AddEdge(ecom, bank, MetadataPolicy::FullDisclosure()));
  METALEAK_RETURN_NOT_OK(
      topo.AddEdge(telco, bank, MetadataPolicy::FullDisclosure()));

  TopologyOptions options;
  options.label_party = bank;
  options.train.epochs = 120;
  options.attack_rounds = 8;

  CoalitionSpec spec;
  spec.attackers = {bank};

  ParetoAxis axis;
  METALEAK_ASSIGN_OR_RETURN(
      axis.points,
      SweepPolicyPareto(topo, options, spec, CandidatePolicies()));
  std::set<std::pair<double, double>> distinct;
  for (const ParetoPoint& p : axis.points) {
    if (p.on_frontier) {
      ++axis.frontier_points;
      distinct.insert({p.joint_accuracy, p.leakage_rate});
    }
  }
  axis.distinct_tradeoffs = distinct.size();
  return axis;
}

// --- Axis 3: coalition sizes and row scaling ----------------------------------

struct CoalitionRecord {
  size_t size = 0;
  std::string attackers;
  std::string victims;
  double leakage_rate = 0.0;
  double categorical_rate = 0.0;
};

struct ScalingRecord {
  size_t rows = 0;
  size_t intersection = 0;
  double align_ms = 0.0;
  double utility_ms = 0.0;
  double coalition_ms = 0.0;
};

// Fully-connected federation: everyone disclosed to everyone at full
// level, so any attacker subset has every remaining party as a victim.
Result<FederationTopology> FullMesh(
    const datasets::FintechFederationScenario& s) {
  FederationTopology topo;
  topo.AddParty(Party("bank", s.bank, "customer_id"));
  topo.AddParty(Party("ecommerce", s.ecommerce, "customer_id"));
  topo.AddParty(Party("telco", s.telco, "customer_id"));
  topo.AddParty(Party("insurer", s.insurer, "customer_id"));
  for (size_t from = 0; from < 4; ++from) {
    for (size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      METALEAK_RETURN_NOT_OK(
          topo.AddEdge(from, to, MetadataPolicy::FullDisclosure()));
    }
  }
  return topo;
}

std::string JoinNames(const FederationTopology& topo,
                      const std::vector<size_t>& parties) {
  std::string out;
  for (size_t p : parties) {
    if (!out.empty()) out += "+";
    out += topo.party(p).name();
  }
  return out;
}

Result<std::vector<CoalitionRecord>> RunCoalitionSizes() {
  datasets::FintechFederationOptions data_options;
  data_options.population = 1500;
  datasets::FintechFederationScenario s =
      datasets::FintechFederation(data_options);
  METALEAK_ASSIGN_OR_RETURN(FederationTopology topo, FullMesh(s));

  TopologyOptions options;
  options.attack_rounds = 8;
  METALEAK_ASSIGN_OR_RETURN(TopologyAlignment alignment,
                            topo.Align(options));

  // Coalition grows one party at a time: bank, bank+ecommerce,
  // bank+ecommerce+telco.
  std::vector<CoalitionRecord> records;
  std::vector<size_t> attackers;
  for (size_t next : {0u, 1u, 2u}) {
    attackers.push_back(next);
    CoalitionSpec spec;
    spec.attackers = attackers;
    METALEAK_ASSIGN_OR_RETURN(CoalitionOutcome outcome,
                              topo.EvaluateCoalition(alignment, spec, options));
    CoalitionRecord record;
    record.size = attackers.size();
    record.attackers = JoinNames(topo, outcome.attackers);
    record.victims = JoinNames(topo, outcome.victims);
    if (outcome.monte_carlo.has_value()) {
      record.leakage_rate = outcome.monte_carlo->overall_match_rate;
      record.categorical_rate = outcome.monte_carlo->categorical_match_rate;
    }
    records.push_back(std::move(record));
  }
  return records;
}

Result<std::vector<ScalingRecord>> RunRowScaling() {
  std::vector<ScalingRecord> records;
  for (size_t rows : {10000u, 25000u, 50000u}) {
    datasets::FintechFederationOptions data_options;
    data_options.population = rows;
    datasets::FintechFederationScenario s =
        datasets::FintechFederation(data_options);

    FederationTopology topo;
    size_t bank = topo.AddParty(Party("bank", s.bank, "customer_id"));
    size_t ecom =
        topo.AddParty(Party("ecommerce", s.ecommerce, "customer_id"));
    size_t telco = topo.AddParty(Party("telco", s.telco, "customer_id"));
    METALEAK_RETURN_NOT_OK(
        topo.AddEdge(ecom, bank, MetadataPolicy::FullDisclosure()));
    METALEAK_RETURN_NOT_OK(
        topo.AddEdge(telco, bank, MetadataPolicy::FullDisclosure()));

    TopologyOptions options;
    options.label_party = bank;
    options.train.epochs = 60;

    ScalingRecord record;
    record.rows = rows;

    auto start = std::chrono::steady_clock::now();
    METALEAK_ASSIGN_OR_RETURN(TopologyAlignment alignment,
                              topo.Align(options));
    record.align_ms = MsSince(start);
    record.intersection = alignment.intersection_size();

    start = std::chrono::steady_clock::now();
    METALEAK_ASSIGN_OR_RETURN(UtilityOutcome utility,
                              topo.EvaluateUtility(alignment, options));
    record.utility_ms = MsSince(start);
    (void)utility;

    CoalitionSpec spec;
    spec.attackers = {bank};
    start = std::chrono::steady_clock::now();
    METALEAK_ASSIGN_OR_RETURN(
        CoalitionOutcome outcome,
        topo.EvaluateCoalition(alignment, spec, options));
    record.coalition_ms = MsSince(start);
    (void)outcome;

    records.push_back(record);
  }
  return records;
}

int Main() {
  std::printf("N-PARTY FEDERATION: policy Pareto sweep and coalition "
              "adversaries\n\n");

  // 1) Parity gate.
  const bool parity_ok = CheckTopologyParity();
  std::printf("two-party topology parity: %s\n\n",
              parity_ok ? "ok" : "MISMATCH");
  if (!parity_ok) {
    std::fprintf(stderr,
                 "parity FAILED: the 2-node topology does not reproduce "
                 "RunScenario\n");
  }

  // 2) Pareto sweep.
  auto pareto = RunParetoSweep();
  if (!pareto.ok()) {
    std::fprintf(stderr, "pareto sweep failed: %s\n",
                 pareto.status().ToString().c_str());
    return 1;
  }
  TablePrinter table(
      "Utility vs leakage per policy (bank attacks ecommerce+telco)");
  table.SetHeader({"Policy", "Joint accuracy", "Leakage rate", "Mean MSE",
                   "Frontier"});
  for (const ParetoPoint& p : pareto->points) {
    table.AddRow({p.policy_name, FormatDouble(p.joint_accuracy, 4),
                  p.reconstructed ? FormatDouble(p.leakage_rate, 4) : "0 (no "
                                                                      "recon)",
                  p.mean_mse.has_value() ? FormatDouble(*p.mean_mse, 1) : "-",
                  p.on_frontier ? "*" : ""});
  }
  table.Print();
  std::printf("frontier points: %zu (%zu distinct trade-offs)\n\n",
              pareto->frontier_points, pareto->distinct_tradeoffs);
  const bool frontier_ok = pareto->distinct_tradeoffs >= 3;
  if (!frontier_ok) {
    std::fprintf(stderr,
                 "pareto FAILED: fewer than 3 distinct frontier points\n");
  }

  // 3) Coalition sizes + row scaling.
  auto coalitions = RunCoalitionSizes();
  if (!coalitions.ok()) {
    std::fprintf(stderr, "coalition axis failed: %s\n",
                 coalitions.status().ToString().c_str());
    return 1;
  }
  TablePrinter coalition_table("Leakage vs coalition size (full mesh)");
  coalition_table.SetHeader(
      {"Size", "Attackers", "Victims", "Overall rate", "Categorical rate"});
  for (const CoalitionRecord& r : *coalitions) {
    coalition_table.AddRow({std::to_string(r.size), r.attackers, r.victims,
                            FormatDouble(r.leakage_rate, 4),
                            FormatDouble(r.categorical_rate, 4)});
  }
  coalition_table.Print();
  std::printf("\n");

  auto scaling = RunRowScaling();
  if (!scaling.ok()) {
    std::fprintf(stderr, "row-scaling axis failed: %s\n",
                 scaling.status().ToString().c_str());
    return 1;
  }
  TablePrinter scale_table("Wall-clock vs rows (3-party topology)");
  scale_table.SetHeader(
      {"Rows", "Intersection", "Align ms", "Train ms", "Attack ms"});
  for (const ScalingRecord& r : *scaling) {
    scale_table.AddRow({std::to_string(r.rows),
                        std::to_string(r.intersection),
                        FormatDouble(r.align_ms, 1),
                        FormatDouble(r.utility_ms, 1),
                        FormatDouble(r.coalition_ms, 1)});
  }
  scale_table.Print();

  // --- JSON artifact ----------------------------------------------------
  std::ofstream json("BENCH_vfl.json");
  json << "{\n  " << BenchMetadataJson() << ",\n  \"topology_parity\": \""
       << (parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"pareto_frontier_points\": " << pareto->distinct_tradeoffs
       << ",\n  \"pareto\": [\n";
  for (size_t i = 0; i < pareto->points.size(); ++i) {
    const ParetoPoint& p = pareto->points[i];
    json << "    {\"policy\": \"" << p.policy_name
         << "\", \"joint_accuracy\": " << p.joint_accuracy
         << ", \"leakage_rate\": " << p.leakage_rate
         << ", \"reconstructed\": " << (p.reconstructed ? "true" : "false")
         << ", \"on_frontier\": " << (p.on_frontier ? "true" : "false")
         << "}" << (i + 1 < pareto->points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"coalitions\": [\n";
  for (size_t i = 0; i < coalitions->size(); ++i) {
    const CoalitionRecord& r = (*coalitions)[i];
    json << "    {\"size\": " << r.size << ", \"attackers\": \""
         << r.attackers << "\", \"victims\": \"" << r.victims
         << "\", \"leakage_rate\": " << r.leakage_rate
         << ", \"categorical_rate\": " << r.categorical_rate << "}"
         << (i + 1 < coalitions->size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < scaling->size(); ++i) {
    const ScalingRecord& r = (*scaling)[i];
    json << "    {\"rows\": " << r.rows
         << ", \"intersection\": " << r.intersection
         << ", \"align_ms\": " << r.align_ms
         << ", \"train_ms\": " << r.utility_ms
         << ", \"attack_ms\": " << r.coalition_ms << "}"
         << (i + 1 < scaling->size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_vfl.json (parity %s, %zu distinct frontier "
              "points)\n",
              parity_ok ? "ok" : "MISMATCH", pareto->distinct_tradeoffs);
  return parity_ok && frontier_ok ? 0 : 1;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
