// E5 — Figure 1 scenario end to end: utility vs. privacy per disclosure
// level in the bank x e-commerce VFL pipeline.
//
// Utility: accuracy of the joint loan-default model vs. the bank-only
// model. Privacy: leakage of the e-commerce slice reconstructed by the
// bank from the metadata it received, per disclosure level.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/fintech.h"
#include "vfl/scenario.h"

using namespace metaleak;

int main() {
  datasets::FintechScenario scenario = datasets::Fintech();
  Party bank("bank", scenario.bank, "customer_id");
  Party ecommerce("ecommerce", scenario.ecommerce, "customer_id");

  ScenarioOptions options;
  options.train.epochs = 250;
  Result<ScenarioOutcome> outcome = RunScenario(bank, ecommerce, options);
  if (!outcome.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  std::printf("FIGURE 1 SCENARIO: bank x e-commerce VFL pipeline\n\n");
  std::printf("PSI intersection size: %zu aligned customers\n",
              outcome->intersection_size);
  std::printf("Utility (training accuracy):\n");
  std::printf("  bank-only model : %s\n",
              FormatDouble(outcome->party_a_only_accuracy, 4).c_str());
  std::printf("  joint VFL model : %s  (federation benefit: %+s)\n\n",
              FormatDouble(outcome->joint_accuracy, 4).c_str(),
              FormatDouble(outcome->joint_accuracy -
                               outcome->party_a_only_accuracy,
                           4)
                  .c_str());

  TablePrinter table(
      "Privacy: reconstruction of the e-commerce slice by the bank");
  table.SetHeader({"Disclosure level", "Reconstructable",
                   "Categorical matches", "Mean continuous MSE"});
  for (const AttackResult& level : outcome->leakage_by_level) {
    std::string matches = "-";
    std::string mse = "-";
    if (level.reconstructed) {
      matches = std::to_string(level.leakage.TotalCategoricalMatches());
      double mse_sum = 0.0;
      size_t mse_count = 0;
      for (const AttributeLeakage& a : level.leakage.attributes) {
        if (a.mse.has_value()) {
          mse_sum += *a.mse;
          ++mse_count;
        }
      }
      mse = mse_count > 0 ? FormatDouble(mse_sum / mse_count, 1) : "-";
    }
    table.AddRow({DisclosureLevelToString(level.level),
                  level.reconstructed ? "yes" : "no", matches, mse});
  }
  table.Print();
  std::printf(
      "\nReading: reconstruction becomes possible once domains are shared;\n"
      "adding FDs and RFDs does not increase the leakage beyond that level\n"
      "(the paper's conclusion).\n");
  return 0;
}
