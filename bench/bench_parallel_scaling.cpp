// Thread-scaling bench for the shared parallel runtime (common/parallel.h).
//
// Times three representative hot paths — TANE lattice search, DD minimal-
// delta validation, and the Monte-Carlo experiment runner — at 1/2/4/8
// pool threads on synthetic data, and writes the measurements to
// BENCH_parallel.json in the working directory (one record per op x
// thread count: op, rows, threads, ms, speedup vs 1 thread).
//
// Results are workload-identical across thread counts (chunking depends
// only on the grain), so the numbers measure pure scheduling/scaling
// behaviour. On machines with fewer hardware cores than the requested
// thread count the speedup saturates at the core count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/parallel.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "discovery/discovery_engine.h"
#include "discovery/tane.h"
#include "discovery/validators.h"
#include "privacy/experiment.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string op;
  size_t rows = 0;
  size_t threads = 0;
  double ms = 0.0;
  double speedup = 1.0;
};

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr int kReps = 3;  // keep the best (least-disturbed) repetition

// Times `fn` (already-validated workload; aborts on failure inside) and
// returns the best-of-kReps wall time in milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

// Runs `fn` once per thread count and appends the scaling records.
template <typename Fn>
void RunOp(const std::string& op, size_t rows, Fn&& fn,
           std::vector<BenchRecord>& out) {
  double baseline_ms = 0.0;
  for (size_t threads : kThreadCounts) {
    SetGlobalThreadCount(threads);
    BenchRecord rec;
    rec.op = op;
    rec.rows = rows;
    rec.threads = threads;
    rec.ms = TimeMs(fn);
    if (threads == 1) baseline_ms = rec.ms;
    rec.speedup = rec.ms > 0.0 ? baseline_ms / rec.ms : 1.0;
    std::printf("%-24s rows=%zu threads=%zu  %9.2f ms  speedup %.2fx\n",
                op.c_str(), rows, threads, rec.ms, rec.speedup);
    out.push_back(rec);
  }
  SetGlobalThreadCount(0);
}

int Main() {
  std::vector<BenchRecord> records;

  // --- TANE on a 50k-row categorical relation ---------------------------
  constexpr size_t kTaneRows = 50000;
  Relation tane_rel = std::move(datasets::SyntheticUniform(
                                    kTaneRows, /*num_categorical=*/6,
                                    /*num_continuous=*/0,
                                    /*domain_size=*/24, /*seed=*/7))
                          .ValueOrDie();
  EncodedRelation tane_enc = EncodedRelation::Encode(tane_rel);
  TaneOptions tane_options;
  tane_options.max_lhs_size = 3;
  tane_options.max_g3_error = 0.05;
  RunOp(
      "tane_fd_afd", kTaneRows,
      [&] {
        auto result = DiscoverFds(tane_enc, tane_options);
        if (!result.ok()) std::abort();
      },
      records);

  // --- DD minimal-delta validation on 50k continuous rows ---------------
  constexpr size_t kDdRows = 50000;
  Relation dd_rel = std::move(datasets::SyntheticUniform(
                                  kDdRows, /*num_categorical=*/0,
                                  /*num_continuous=*/2,
                                  /*domain_size=*/8, /*seed=*/11))
                        .ValueOrDie();
  EncodedRelation dd_enc = EncodedRelation::Encode(dd_rel);
  RunOp(
      "dd_minimal_delta", kDdRows,
      [&] {
        auto delta = ComputeMinimalDelta(dd_enc, 0, 1, /*eps=*/5.0);
        if (!delta.ok()) std::abort();
      },
      records);

  // --- Monte-Carlo experiment rounds ------------------------------------
  constexpr size_t kExpRows = 5000;
  Relation exp_rel = std::move(datasets::SyntheticUniform(
                                   kExpRows, /*num_categorical=*/3,
                                   /*num_continuous=*/2,
                                   /*domain_size=*/12, /*seed=*/3))
                         .ValueOrDie();
  auto report = ProfileRelation(exp_rel);
  if (!report.ok()) std::abort();
  ExperimentConfig config;
  config.rounds = 16;
  config.threads = 0;  // follow the global pool size set by RunOp
  RunOp(
      "experiment_rounds", kExpRows,
      [&] {
        auto result = RunMethod(exp_rel, report->metadata,
                                GenerationMethod::kRandom, config);
        if (!result.ok()) std::abort();
      },
      records);

  std::ofstream json("BENCH_parallel.json");
  json << "{\n  " << BenchMetadataJson() << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"rows\": " << r.rows
         << ", \"threads\": " << r.threads << ", \"ms\": " << r.ms
         << ", \"speedup\": " << r.speedup << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_parallel.json (%zu records)\n", records.size());
  return 0;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
