// A3 — Ablation: continuous-leakage sensitivity to the epsilon threshold
// of Definition 2.3, on the echocardiogram replica.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  Relation real = datasets::Echocardiogram();
  Result<DiscoveryReport> report = ProfileRelation(real);
  if (!report.ok()) return 1;

  // Attribute 6 (lvdd): continuous and FD-covered (epss -> lvdd), so the
  // FD column carries data rather than NA.
  const size_t kAttr = 6;
  Result<Domain> domain = ExtractDomain(real, kAttr);
  if (!domain.ok()) return 1;
  size_t compared = 0;
  for (const Value& v : real.column(kAttr)) {
    if (!v.is_null()) ++compared;
  }

  TablePrinter table(
      "A3: DEF-2.3 MATCHES VS EPSILON (attr 6, range=" +
      FormatDouble(domain->range(), 1) + ", N=" + std::to_string(compared) +
      ", 1500 rounds)");
  table.SetHeader({"eps (fraction of range)", "eps (absolute)",
                   "Random measured", "Analytical E", "FD measured"});

  for (double frac : {0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25}) {
    ExperimentConfig config;
    config.rounds = 1500;
    config.seed = static_cast<uint64_t>(frac * 1e6);
    config.leakage.epsilon_fraction = frac;
    Result<std::vector<MethodResult>> results = RunExperiment(
        real, report->metadata,
        {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
    if (!results.ok()) return 1;
    Result<MethodAttributeResult> rnd = (*results)[0].ForAttribute(kAttr);
    Result<MethodAttributeResult> fd = (*results)[1].ForAttribute(kAttr);
    double eps = frac * domain->range();
    double expected =
        ExpectedRandomContinuousMatches(compared, *domain, eps);
    table.AddRow(
        {FormatDouble(frac, 3), FormatDouble(eps, 3),
         rnd.ok() ? FormatDouble(rnd->mean_matches, 3) : "NA",
         FormatDouble(expected, 3),
         fd.ok() && fd->covered ? FormatDouble(fd->mean_matches, 3)
                                : "NA"});
  }
  table.Print();
  std::printf(
      "\nReading: matches grow ~linearly with eps (2*eps/range per row);\n"
      "FD-informed generation tracks the random baseline at every eps.\n");
  return 0;
}
