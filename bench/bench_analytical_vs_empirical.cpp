// E4 — Cross-check of the Section III/IV closed-form expectations against
// Monte-Carlo measurement, one row per dependency class.
//
// Setup: a synthetic relation with a planted dependency of each class;
// metadata restricted to that class drives generation; the measured mean
// matches are compared against the paper's analytical expectation.
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

namespace {

// Builds a relation with categorical x (domain dx) -> y (domain dy)
// planted per the requested kind.
Result<Relation> PlantedRelation(datasets::SyntheticAttribute::Kind kind,
                                 size_t rows, size_t dx, size_t dy,
                                 size_t fanout, uint64_t seed) {
  datasets::SyntheticConfig config;
  config.num_rows = rows;
  config.seed = seed;
  datasets::SyntheticAttribute x;
  x.name = "x";
  x.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  x.domain_size = dx;
  datasets::SyntheticAttribute y;
  y.name = "y";
  y.kind = kind;
  y.source = 0;
  y.domain_size = dy;
  y.fanout = fanout;
  y.violation_rate = 0.05;
  config.attributes = {x, y};
  return datasets::Synthetic(config);
}

}  // namespace

int main() {
  const size_t kRows = 500;
  const size_t kDx = 24;
  const size_t kDy = 8;
  const size_t kFanout = 3;

  TablePrinter table(
      "ANALYTICAL EXPECTATION VS MONTE-CARLO MEAN (target attribute "
      "matches; N=" + std::to_string(kRows) + ", |Dx|=" +
      std::to_string(kDx) + ", |Dy|=" + std::to_string(kDy) + ")");
  table.SetHeader({"Class", "Analytical E[matches]", "Empirical mean",
                   "Relative gap"});

  struct Row {
    const char* name;
    GenerationMethod method;
    datasets::SyntheticAttribute::Kind planted;
  };
  const Row rows[] = {
      {"Random (names+domains)", GenerationMethod::kRandom,
       datasets::SyntheticAttribute::Kind::kDerivedMonotone},
      {"FD", GenerationMethod::kFd,
       datasets::SyntheticAttribute::Kind::kDerivedMonotone},
      {"AFD (g3<=0.05)", GenerationMethod::kAfd,
       datasets::SyntheticAttribute::Kind::kDerivedApproximate},
      {"ND (K=3)", GenerationMethod::kNd,
       datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout},
  };

  for (const Row& row : rows) {
    Result<Relation> rel =
        PlantedRelation(row.planted, kRows, kDx, kDy, kFanout, 7);
    if (!rel.ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   rel.status().ToString().c_str());
      return 1;
    }
    DiscoveryOptions discovery;
    discovery.discover_afds = true;
    discovery.nd.max_fanout_fraction = 0.9;
    discovery.nd.min_slack = 1;
    Result<DiscoveryReport> report = ProfileRelation(*rel, discovery);
    if (!report.ok()) {
      std::fprintf(stderr, "profiling failed\n");
      return 1;
    }
    ExperimentConfig config;
    config.rounds = 600;
    config.seed = 99;
    Result<MethodResult> result =
        RunMethod(*rel, report->metadata, row.method, config);
    if (!result.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    Result<MethodAttributeResult> target = result->ForAttribute(1);
    if (!target.ok()) return 1;

    // The paper's analytical marginal for the RHS is 1/|Dy| per row for
    // random, FD, AFD and ND generation alike (Sections III-B, IV-A,
    // IV-B) — computed over the *actual* disclosed domain.
    Result<std::vector<Domain>> domains = report->metadata.RequireDomains();
    double expected = ExpectedRandomCategoricalMatches(
        rel->num_rows(), (*domains)[1]);
    double measured = target->covered || row.method == GenerationMethod::kRandom
                          ? target->mean_matches
                          : -1.0;
    double gap = expected > 0 ? (measured - expected) / expected : 0.0;
    table.AddRow({row.name, FormatDouble(expected, 3),
                  measured < 0 ? "NA" : FormatDouble(measured, 3),
                  measured < 0 ? "NA"
                               : FormatDouble(100.0 * gap, 1) + "%"});
  }

  // Order dependency: the expectation is the interval-overlap sum, which
  // differs from the random baseline; evaluate on a continuous pair.
  {
    datasets::SyntheticConfig config;
    config.num_rows = kRows;
    config.seed = 13;
    datasets::SyntheticAttribute x;
    x.name = "x";
    x.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
    x.lo = 0;
    x.hi = 100;
    datasets::SyntheticAttribute y;
    y.name = "y";
    y.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
    y.source = 0;
    y.domain_size = 0;
    y.lo = 0;
    config.attributes = {x, y};
    Result<Relation> rel = datasets::Synthetic(config);
    Result<DiscoveryReport> report = ProfileRelation(*rel);
    ExperimentConfig econfig;
    econfig.rounds = 400;
    econfig.seed = 5;
    econfig.leakage.epsilon_fraction = 0.01;
    Result<MethodResult> od =
        RunMethod(*rel, report->metadata, GenerationMethod::kOd, econfig);
    if (od.ok()) {
      Result<MethodAttributeResult> target = od->ForAttribute(1);
      Result<std::vector<Domain>> domains =
          report->metadata.RequireDomains();
      if (target.ok() && target->covered && domains.ok()) {
        // Count distinct LHS values = partitions.
        size_t partitions = 0;
        {
          std::vector<Value> vals = rel->column(0);
          std::sort(vals.begin(), vals.end());
          partitions = std::unique(vals.begin(), vals.end()) - vals.begin();
        }
        double eps = 0.01 * (*domains)[1].range();
        // What the adversary actually achieves: the OD mapping is applied
        // to a *randomly generated* LHS, so the per-row hit probability
        // collapses to the random baseline (the paper's conclusion). The
        // aligned-partition expectation ExpectedOdMatches() is the upper
        // bound an adversary with known partition assignment would reach.
        double expected = ExpectedRandomContinuousMatches(
            rel->num_rows(), (*domains)[1], eps);
        double bound = ExpectedOdMatches(rel->num_rows(), partitions,
                                         (*domains)[1], eps);
        double gap = (target->mean_matches - expected) / expected;
        table.AddRow({"OD (random LHS)", FormatDouble(expected, 3),
                      FormatDouble(target->mean_matches, 3),
                      FormatDouble(100.0 * gap, 1) + "%"});
        table.AddRow({"OD aligned-partition bound", FormatDouble(bound, 3),
                      "-", "-"});
      }
    }
  }

  table.Print();
  std::printf(
      "\nReading: every class matches its Section III/IV expectation; FD,\n"
      "AFD and ND rows equal the random baseline (no extra leakage), OD\n"
      "follows the order-statistics overlap expectation.\n");
  return 0;
}
