// E3 — Example 3.1 of the paper: expected vs. measured leakage on the
// employee table when only attribute names and domains are shared.
//
// Paper: age domain [18, 26] (9 values) -> E = 4/9; department domain of
// 3 values -> E = 4/3 >= 1, i.e. expected leakage.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/employee.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  Relation employee = datasets::Employee();
  Result<DiscoveryReport> report = ProfileRelation(employee);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  MetadataPackage metadata = report->metadata;
  // The paper's example uses the *declared* age domain [18, 26] (9
  // integers), not the observed distinct values; override accordingly.
  metadata.domains[1] = Domain::Categorical(
      {Value::Int(18), Value::Int(19), Value::Int(20), Value::Int(21),
       Value::Int(22), Value::Int(23), Value::Int(24), Value::Int(25),
       Value::Int(26)});
  // Treat age as categorical for exact matching, as the example does.
  std::vector<Attribute> attrs = metadata.schema.attributes();
  attrs[1].semantic = SemanticType::kCategorical;
  metadata.schema = Schema(attrs);
  Relation real = employee;
  {
    std::vector<Attribute> real_attrs = real.schema().attributes();
    real_attrs[1].semantic = SemanticType::kCategorical;
    std::vector<std::vector<Value>> cols;
    for (size_t c = 0; c < real.num_columns(); ++c) {
      cols.push_back(real.column(c));
    }
    real = std::move(Relation::Make(Schema(real_attrs), std::move(cols)))
               .ValueOrDie();
  }

  ExperimentConfig config;
  config.rounds = 20000;
  config.seed = 31;
  Result<MethodResult> random =
      RunMethod(real, metadata, GenerationMethod::kRandom, config);
  if (!random.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 random.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("EXAMPLE 3.1: EXPECTED VS MEASURED MATCHES (" +
                     std::to_string(config.rounds) + " rounds)");
  table.SetHeader({"Attribute", "|D|", "E[matches] = N/|D|", "Measured",
                   "Leakage expected (E >= 1)?"});
  Result<std::vector<Domain>> domains = metadata.RequireDomains();
  for (size_t c : {1u, 2u}) {
    Result<MethodAttributeResult> a = random->ForAttribute(c);
    if (!a.ok()) continue;
    double expected = ExpectedRandomCategoricalMatches(
        real.num_rows(), (*domains)[c]);
    table.AddRow({real.schema().attribute(c).name,
                  FormatDouble((*domains)[c].Size(), 0),
                  FormatDouble(expected, 4),
                  FormatDouble(a->mean_matches, 4),
                  expected >= 1.0 ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "\nPaper: E[age] = 4/9 (low leakage risk), E[department] = 4/3 >= 1\n"
      "(one correct guess expected).\n");
  return 0;
}
