// E6 — Dataset-selection control.
//
// Section V: "We chose the echocardiogram dataset as we can discover
// functional dependencies, order dependencies, and numerical dependencies
// from this dataset. From other datasets, we can only discover trivial
// dependencies or oversimplified mappings." This bench makes that
// statement checkable: profile a high-entropy control relation next to
// the echocardiogram replica and compare what each discovery class
// finds, then confirm the control's only FDs are key-based
// "oversimplified mappings" whose generation value is nil.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/synthetic.h"
#include "discovery/discovery_engine.h"
#include "partition/position_list_index.h"
#include "privacy/experiment.h"

using namespace metaleak;

namespace {

struct ClassCounts {
  size_t fds = 0;
  size_t key_fds = 0;  // FDs whose LHS has N distinct values (a key)
  size_t ods = 0;
  size_t nds = 0;
  size_t dds = 0;
};

Result<ClassCounts> Profile(const Relation& relation,
                            MetadataPackage* metadata_out) {
  DiscoveryOptions options;
  METALEAK_ASSIGN_OR_RETURN(DiscoveryReport report,
                            ProfileRelation(relation, options));
  ClassCounts counts;
  for (const Dependency& d : report.metadata.dependencies) {
    switch (d.kind) {
      case DependencyKind::kFunctional: {
        ++counts.fds;
        // "Oversimplified mapping": the LHS is (part of) a key — its
        // domain is as large as the table, so the mapping is the data.
        bool key_like = false;
        for (size_t i : d.lhs.ToIndices()) {
          PositionListIndex pli =
              PositionListIndex::FromColumn(relation.column(i));
          if (pli.num_classes() == relation.num_rows()) key_like = true;
        }
        if (key_like) ++counts.key_fds;
        break;
      }
      case DependencyKind::kOrder:
        ++counts.ods;
        break;
      case DependencyKind::kNumerical:
        ++counts.nds;
        break;
      case DependencyKind::kDifferential:
        ++counts.dds;
        break;
      default:
        break;
    }
  }
  *metadata_out = std::move(report.metadata);
  return counts;
}

}  // namespace

int main() {
  Result<Relation> control_result = datasets::TrivialControl(132, 9);
  if (!control_result.ok()) return 1;
  Relation control = std::move(control_result).ValueUnsafe();
  Relation echo = datasets::Echocardiogram();

  MetadataPackage control_meta;
  MetadataPackage echo_meta;
  Result<ClassCounts> control_counts = Profile(control, &control_meta);
  Result<ClassCounts> echo_counts = Profile(echo, &echo_meta);
  if (!control_counts.ok() || !echo_counts.ok()) return 1;

  TablePrinter table("E6: WHAT EACH DATASET LETS AN ADVERSARY DISCOVER");
  table.SetHeader({"Dataset", "FDs", "of which key-based", "ODs", "NDs",
                   "DDs"});
  table.AddRow({"trivial control", std::to_string(control_counts->fds),
                std::to_string(control_counts->key_fds),
                std::to_string(control_counts->ods),
                std::to_string(control_counts->nds),
                std::to_string(control_counts->dds)});
  table.AddRow({"echocardiogram replica",
                std::to_string(echo_counts->fds),
                std::to_string(echo_counts->key_fds),
                std::to_string(echo_counts->ods),
                std::to_string(echo_counts->nds),
                std::to_string(echo_counts->dds)});
  table.Print();

  // Even the control's key-based FDs buy the adversary nothing.
  ExperimentConfig config;
  config.rounds = 500;
  config.seed = 66;
  Result<std::vector<MethodResult>> results = RunExperiment(
      control, control_meta,
      {GenerationMethod::kRandom, GenerationMethod::kFd}, config);
  if (!results.ok()) return 1;
  std::printf("\nControl relation, label attribute (|D|=50):\n");
  for (const MethodResult& m : *results) {
    Result<MethodAttributeResult> label = m.ForAttribute(3);
    if (!label.ok()) continue;
    std::printf("  %-20s mean matches = %s%s\n",
                GenerationMethodToString(m.method).c_str(),
                (!label->covered && m.method != GenerationMethod::kRandom)
                    ? "NA"
                    : FormatDouble(label->mean_matches, 3).c_str(),
                "");
  }
  std::printf(
      "\nReading: the control dataset yields almost exclusively key-based\n"
      "FDs (\"oversimplified mappings\") and no order/fan-out structure —\n"
      "matching the paper's rationale for evaluating on echocardiogram.\n");
  return 0;
}
