// E1/E2 extension — the full method matrix.
//
// The paper's Tables III/IV report Random/FD/OD/ND; Sections IV-A, IV-D
// and IV-E additionally analyze AFD, DD and OFD without tabulating them.
// This bench completes the matrix over the echocardiogram replica: every
// generation class the paper discusses, on both attribute families.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  Relation real = datasets::Echocardiogram();
  DiscoveryOptions discovery;
  discovery.discover_afds = true;
  discovery.discover_cfds = true;
  discovery.cfd.min_support = 10;
  Result<DiscoveryReport> report = ProfileRelation(real, discovery);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  ExperimentConfig config;
  config.rounds = 300;
  config.seed = 424242;
  const std::vector<GenerationMethod> methods = {
      GenerationMethod::kRandom, GenerationMethod::kFd,
      GenerationMethod::kAfd,    GenerationMethod::kOd,
      GenerationMethod::kOfd,    GenerationMethod::kNd,
      GenerationMethod::kDd,     GenerationMethod::kCfd};
  Result<std::vector<MethodResult>> results =
      RunExperiment(real, report->metadata, methods, config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  // Categorical matrix (positive matches).
  {
    const std::vector<size_t> attrs = {1, 3, 11, 12};
    TablePrinter table(
        "EXTENDED TABLE IV: ALL GENERATION CLASSES, CATEGORICAL "
        "ATTRIBUTES (mean matches, 300 rounds)");
    std::vector<std::string> header = {"Method"};
    for (size_t c : attrs) header.push_back("Attr " + std::to_string(c));
    table.SetHeader(std::move(header));
    for (const MethodResult& m : *results) {
      std::vector<std::string> row = {GenerationMethodToString(m.method)};
      for (size_t c : attrs) {
        Result<MethodAttributeResult> a = m.ForAttribute(c);
        bool na = !a.ok() ||
                  (!a->covered && m.method != GenerationMethod::kRandom);
        row.push_back(na ? "NA" : FormatDouble(a->mean_matches, 3));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf("\n");
  // Continuous matrix (MSE).
  {
    const std::vector<size_t> attrs = {0, 2, 4, 5, 6, 7, 8, 9};
    TablePrinter table(
        "EXTENDED TABLE III: ALL GENERATION CLASSES, CONTINUOUS "
        "ATTRIBUTES (mean MSE, 300 rounds)");
    std::vector<std::string> header = {"Method"};
    for (size_t c : attrs) header.push_back("Attr " + std::to_string(c));
    table.SetHeader(std::move(header));
    for (const MethodResult& m : *results) {
      std::vector<std::string> row = {GenerationMethodToString(m.method)};
      for (size_t c : attrs) {
        Result<MethodAttributeResult> a = m.ForAttribute(c);
        bool na = !a.ok() ||
                  (!a->covered && m.method != GenerationMethod::kRandom) ||
                  !a->mean_mse.has_value();
        row.push_back(na ? "NA" : FormatDouble(*a->mean_mse, 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nReading: every class the paper analyzes (FD, AFD, OD, OFD, ND,\n"
      "DD) stays at the random baseline on both attribute families —\n"
      "completing Sections IV-A/IV-D/IV-E, whose AFD/DD/OFD analyses the\n"
      "paper states without tabulating. The one exception is the CFD row:\n"
      "its *constant patterns* embed data values and visibly beat random\n"
      "on the attributes they pin (see bench_ablation_cfd).\n");
  return 0;
}
