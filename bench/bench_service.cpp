// Service bench: the snapshot/delta split measured, at 10k-200k rows.
//
// Two comparisons, both against the code the service layer replaced:
//
//  - "audit": the cold per-call path (RunAudit re-encodes and re-discovers
//    on every call) versus the warm path (AuditService::Audit serves the
//    measurement stages from a registered session's snapshot). The
//    acceptance number is the 50k-row speedup, which must be >= 5x.
//  - "maintain": applying row batches through the session (in-place PLI
//    maintenance + targeted revalidation) versus rebuilding the snapshot
//    from scratch after each batch.
//
// Before timing anything the bench asserts the warm audit is bit-identical
// to the cold one and the post-batch session state is bit-identical to a
// from-scratch build; any disagreement exits non-zero. Results go to
// BENCH_service.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/simd.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/revalidate.h"
#include "privacy/audit.h"
#include "service/audit_service.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string op;
  std::string layout;
  size_t rows = 0;
  double ms = 0.0;
};

constexpr int kReps = 3;  // keep the best (least-disturbed) repetition
// The batch sequence mutates session state, so each timing rep would need
// its own fully registered service; one rep keeps the bench affordable.
constexpr int kRepsMaintain = 1;
constexpr size_t kBatches = 4;
constexpr size_t kBatchRows = 8;  // deletes and inserts per batch

template <typename Fn>
double TimeMs(Fn&& fn, int reps = kReps) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

AuditOptions BenchAudit() {
  AuditOptions options;
  // Few Monte-Carlo rounds: the point of the warm path is that encoding
  // and discovery are already paid for, so keep the measurement stage
  // (which both paths run identically) small.
  options.experiment.rounds = 1;
  options.methods = {GenerationMethod::kFd};
  return options;
}

/// The batch sequence: drop a few early rows, re-insert copies of other
/// base rows. Deterministic and always in range at >= 10k rows.
std::vector<RowBatch> MakeBatches(const Relation& base) {
  std::vector<RowBatch> batches(kBatches);
  for (size_t b = 0; b < kBatches; ++b) {
    for (size_t j = 0; j < kBatchRows; ++j) {
      batches[b].delete_rows.push_back(b * 31 + j * 3);
      batches[b].insert_rows.push_back(base.Row(b * 17 + j * 5 + 1));
    }
  }
  return batches;
}

/// Value-level mirror of one batch, matching DeltaRelation's semantics:
/// surviving rows keep their order, inserts append.
Relation ApplyBatchReference(const Relation& relation,
                             const RowBatch& batch) {
  std::vector<size_t> deletes = batch.delete_rows;
  std::sort(deletes.begin(), deletes.end());
  Relation next = Relation::Empty(relation.schema());
  size_t d = 0;
  for (size_t r = 0; r < relation.num_rows(); ++r) {
    if (d < deletes.size() && deletes[d] == r) {
      ++d;
      continue;
    }
    if (!next.AppendRow(relation.Row(r)).ok()) std::abort();
  }
  for (const std::vector<Value>& row : batch.insert_rows) {
    if (!next.AppendRow(row).ok()) std::abort();
  }
  return next;
}

bool AuditsIdentical(const AuditResult& a, const AuditResult& b) {
  if (a.metadata.Serialize() != b.metadata.Serialize()) return false;
  if (a.identifiable_fraction != b.identifiable_fraction) return false;
  if (a.method_results.size() != b.method_results.size()) return false;
  for (size_t m = 0; m < a.method_results.size(); ++m) {
    if (a.method_results[m].round_seeds != b.method_results[m].round_seeds)
      return false;
    const auto& at = a.method_results[m].attributes;
    const auto& bt = b.method_results[m].attributes;
    if (at.size() != bt.size()) return false;
    for (size_t c = 0; c < at.size(); ++c) {
      if (at[c].mean_matches != bt[c].mean_matches) return false;
    }
  }
  return true;
}

int Main() {
  const std::vector<size_t> row_counts = {10000, 50000, 200000};
  const AuditOptions audit_options = BenchAudit();
  const ServiceOptions service_options;  // defaults match AuditOptions

  std::vector<BenchRecord> records;
  double speedup_50k = 0.0;

  for (size_t rows : row_counts) {
    Result<Relation> made = datasets::SyntheticUniform(rows, 10, 2, 48, 7);
    if (!made.ok()) {
      std::fprintf(stderr, "synthetic(%zu) failed: %s\n", rows,
                   made.status().ToString().c_str());
      return 1;
    }
    const Relation base = std::move(made).ValueUnsafe();

    // --- audit: cold per-call path vs warm snapshot --------------------
    AuditService service;
    Result<SessionId> session = service.Register(base);
    if (!session.ok()) {
      std::fprintf(stderr, "register(%zu) failed: %s\n", rows,
                   session.status().ToString().c_str());
      return 1;
    }

    Result<AuditResult> warm = service.Audit(*session, audit_options);
    Result<AuditResult> cold = RunAudit(base, audit_options);
    if (!warm.ok() || !cold.ok()) {
      std::fprintf(stderr, "audit(%zu) failed\n", rows);
      return 1;
    }
    if (!AuditsIdentical(*warm, *cold)) {
      std::fprintf(stderr, "audit parity FAILED at %zu rows\n", rows);
      return 1;
    }

    double sink = 0.0;
    double cold_ms = TimeMs([&] {
      Result<AuditResult> r = RunAudit(base, audit_options);
      if (r.ok()) sink += r->identifiable_fraction;
    });
    double warm_ms = TimeMs([&] {
      Result<AuditResult> r = service.Audit(*session, audit_options);
      if (r.ok()) sink += r->identifiable_fraction;
    });
    records.push_back({"audit", "cold", rows, cold_ms});
    records.push_back({"audit", "warm", rows, warm_ms});
    double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    if (rows == 50000) speedup_50k = speedup;
    std::printf("[rows=%7zu] audit     cold %9.2f ms  warm %9.2f ms  (%.1fx)\n",
                rows, cold_ms, warm_ms, speedup);

    // --- maintain: incremental batches vs from-scratch rebuilds --------
    const std::vector<RowBatch> batches = MakeBatches(base);
    std::vector<Relation> states;  // post-batch reference relations
    states.reserve(kBatches);
    for (size_t b = 0; b < kBatches; ++b) {
      states.push_back(
          ApplyBatchReference(b == 0 ? base : states[b - 1], batches[b]));
    }

    // Each rep drives the batch sequence through its own pre-registered
    // service, so the (expensive) registration stays outside the timer;
    // ms covers all kBatches batches.
    std::vector<std::unique_ptr<AuditService>> rep_services;
    std::vector<SessionId> rep_sessions;
    for (int rep = 0; rep < kRepsMaintain; ++rep) {
      rep_services.push_back(std::make_unique<AuditService>());
      Result<SessionId> id = rep_services.back()->Register(base);
      if (!id.ok()) std::abort();
      rep_sessions.push_back(*id);
    }
    size_t next_rep = 0;
    double incr_ms = TimeMs(
        [&] {
          AuditService& fresh = *rep_services[next_rep];
          const SessionId id = rep_sessions[next_rep];
          ++next_rep;
          for (const RowBatch& batch : batches) {
            Result<LeakageDelta> delta = fresh.ApplyBatch(id, batch);
            if (!delta.ok()) std::abort();
          }
        },
        kRepsMaintain);
    // Rebuild = the full snapshot pipeline (encode + discovery + leakage)
    // from the post-batch rows, which is what a service without the delta
    // half would have to do.
    double rebuild_ms = TimeMs(
        [&] {
          for (const Relation& state : states) {
            DiscoveryMemo memo;
            Result<std::shared_ptr<const RelationSnapshot>> snap =
                RelationSnapshot::FromRelation(state,
                                               service_options.discovery,
                                               service_options.leakage,
                                               &memo);
            if (!snap.ok()) std::abort();
            sink += static_cast<double>((*snap)->num_rows());
          }
        },
        kRepsMaintain);
    records.push_back({"maintain", "incremental", rows, incr_ms});
    records.push_back({"maintain", "rebuild", rows, rebuild_ms});
    std::printf(
        "[rows=%7zu] maintain  incr %9.2f ms  rebuild %7.2f ms  (%.1fx, "
        "%zu batches)\n",
        rows, incr_ms, rebuild_ms,
        incr_ms > 0.0 ? rebuild_ms / incr_ms : 0.0, kBatches);

    // Parity gate for the maintenance path: drive the batches through the
    // original session and compare against a from-scratch build of the
    // final reference state.
    for (const RowBatch& batch : batches) {
      Result<LeakageDelta> delta = service.ApplyBatch(*session, batch);
      if (!delta.ok()) {
        std::fprintf(stderr, "apply_batch(%zu) failed: %s\n", rows,
                     delta.status().ToString().c_str());
        return 1;
      }
    }
    Result<std::shared_ptr<const RelationSnapshot>> final_snap =
        service.Snapshot(*session);
    if (!final_snap.ok()) return 1;
    DiscoveryMemo memo;
    Result<std::shared_ptr<const RelationSnapshot>> rebuilt =
        RelationSnapshot::FromRelation(states.back(),
                                       service_options.discovery,
                                       service_options.leakage, &memo);
    if (!rebuilt.ok()) return 1;
    if ((*final_snap)->fingerprint() != (*rebuilt)->fingerprint() ||
        (*final_snap)->profile().metadata.Serialize() !=
            (*rebuilt)->profile().metadata.Serialize()) {
      std::fprintf(stderr, "maintenance parity FAILED at %zu rows\n", rows);
      return 1;
    }
    if (sink < 0.0) std::printf("%f\n", sink);  // keep the timed work live
  }

  if (speedup_50k < 5.0) {
    std::fprintf(stderr,
                 "warm audit speedup at 50k rows is %.2fx, below the 5x "
                 "acceptance bar\n",
                 speedup_50k);
    return 1;
  }

  std::ofstream json("BENCH_service.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"warm_audit_speedup_50k\": " << speedup_50k << ",\n";
  json << "  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"layout\": \"" << r.layout
         << "\", \"rows\": " << r.rows << ", \"ms\": " << r.ms << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_service.json (%zu records, 50k warm speedup %.2fx)\n",
              records.size(), speedup_50k);
  return 0;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
