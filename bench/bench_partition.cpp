// Partition-layout bench: the flat CSR stripped-partition engine versus
// the pre-CSR nested-vector layout, at 10k-200k rows.
//
// The "nested" rows reimplement (inline) the exact algorithms the CSR
// engine replaced: per-cluster vector allocations, a fresh probe table
// per Intersect call, and — for the identifiability sweep — a full
// FromEncoded rebuild per width-2 subset instead of one cached
// intersection through the PliCache. Before timing anything the bench
// asserts both layouts agree bit-for-bit (cluster contents and sweep
// verdicts); any disagreement exits non-zero. Results go to
// BENCH_partition.json, including the width-2 sweep speedup at each row
// count (the acceptance number is the 50k-row entry).
//
// Two further axes ride along. The SIMD axis forces the kernels to
// scalar versus the best host level and checks the outputs are
// bit-identical; only the bit-parallel low-cardinality counting path is
// timed (the gather-bound intersect/sweep timings it used to report sat
// at ~1.0x and were retired). The streaming axis A/Bs the cache
// refinements — software prefetch in the probe gathers and the
// radix-partitioned scatter in FromCodes — on a high-cardinality
// fixture, plus the tiled counting sweep against the cached-PLI
// extension sweep.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "partition/attribute_set.h"
#include "partition/pli_cache.h"
#include "partition/position_list_index.h"
#include "privacy/identifiability.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string op;
  std::string layout;
  size_t rows = 0;
  double ms = 0.0;
};

constexpr int kReps = 3;  // keep the best (least-disturbed) repetition

template <typename Fn>
double TimeMs(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

// --- The nested-vector engine, reconstructed ----------------------------

constexpr int64_t kLegacyUnique = -1;

struct LegacyPli {
  std::vector<std::vector<size_t>> clusters;
  size_t num_rows = 0;

  std::vector<int64_t> ProbeTable() const {
    std::vector<int64_t> probe(num_rows, kLegacyUnique);
    for (size_t c = 0; c < clusters.size(); ++c) {
      for (size_t row : clusters[c]) probe[row] = static_cast<int64_t>(c);
    }
    return probe;
  }
};

LegacyPli LegacyFromCodes(const std::vector<uint32_t>& codes,
                          uint32_t num_codes) {
  LegacyPli out;
  out.num_rows = codes.size();
  std::vector<uint32_t> counts(num_codes, 0);
  for (uint32_t code : codes) ++counts[code];
  std::vector<uint32_t> slot(num_codes, UINT32_MAX);
  uint32_t next_slot = 0;
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (counts[code] >= 2) slot[code] = next_slot++;
  }
  out.clusters.resize(next_slot);
  for (uint32_t code = 0; code < num_codes; ++code) {
    if (slot[code] != UINT32_MAX) {
      out.clusters[slot[code]].reserve(counts[code]);
    }
  }
  for (size_t r = 0; r < codes.size(); ++r) {
    uint32_t s = slot[codes[r]];
    if (s != UINT32_MAX) out.clusters[s].push_back(r);
  }
  return out;
}

LegacyPli LegacyFromEncoded(const EncodedRelation& relation,
                            const std::vector<size_t>& columns) {
  if (columns.size() == 1) {
    return LegacyFromCodes(relation.codes(columns[0]),
                           relation.dictionary(columns[0]).num_codes());
  }
  const size_t n = relation.num_rows();
  std::vector<uint64_t> ids(relation.codes(columns[0]).begin(),
                            relation.codes(columns[0]).end());
  uint64_t num_groups = relation.dictionary(columns[0]).num_codes();
  std::unordered_map<uint64_t, uint64_t> remap;
  for (size_t i = 1; i < columns.size(); ++i) {
    const std::vector<uint32_t>& codes = relation.codes(columns[i]);
    const uint64_t nc = relation.dictionary(columns[i]).num_codes();
    remap.clear();
    remap.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      uint64_t key = ids[r] * nc + codes[r];
      auto it = remap.emplace(key, remap.size()).first;
      ids[r] = it->second;
    }
    num_groups = remap.size();
  }
  LegacyPli out;
  out.num_rows = n;
  std::vector<uint32_t> counts(num_groups, 0);
  for (uint64_t id : ids) ++counts[id];
  std::vector<uint32_t> slot(num_groups, UINT32_MAX);
  uint32_t next_slot = 0;
  for (uint64_t g = 0; g < num_groups; ++g) {
    if (counts[g] >= 2) slot[g] = next_slot++;
  }
  out.clusters.resize(next_slot);
  for (size_t r = 0; r < n; ++r) {
    uint32_t s = slot[ids[r]];
    if (s != UINT32_MAX) out.clusters[s].push_back(r);
  }
  return out;
}

// The pre-CSR Intersect: fresh probe table per call, hash-map split.
LegacyPli LegacyIntersect(const LegacyPli& a, const LegacyPli& b) {
  std::vector<int64_t> probe = b.ProbeTable();
  LegacyPli out;
  out.num_rows = a.num_rows;
  std::unordered_map<int64_t, std::vector<size_t>> split;
  for (const auto& cluster : a.clusters) {
    split.clear();
    for (size_t row : cluster) {
      int64_t id = probe[row];
      if (id == kLegacyUnique) continue;
      split[id].push_back(row);
    }
    for (auto& [id, rows] : split) {
      if (rows.size() >= 2) out.clusters.push_back(std::move(rows));
    }
  }
  return out;
}

// The pre-CSR identifiability sweep: one full FromEncoded rebuild per
// width-2 subset, parallelized exactly like the old IdentifiableRows.
std::vector<char> SweepByRebuild(const EncodedRelation& enc,
                                 const std::vector<AttributeSet>& subsets) {
  const size_t n = enc.num_rows();
  const size_t grain = subsets.size() / 256 > 0 ? subsets.size() / 256 : 1;
  return ParallelReduce<std::vector<char>>(
      0, subsets.size(), grain, std::vector<char>(n, 0),
      [&](size_t lo, size_t hi) {
        std::vector<char> bits(n, 0);
        for (size_t s = lo; s < hi; ++s) {
          LegacyPli pli = LegacyFromEncoded(enc, subsets[s].ToIndices());
          std::vector<char> in_cluster(n, 0);
          for (const auto& cluster : pli.clusters) {
            for (size_t row : cluster) in_cluster[row] = 1;
          }
          for (size_t r = 0; r < n; ++r) {
            if (!in_cluster[r]) bits[r] = 1;
          }
        }
        return bits;
      },
      [](std::vector<char> acc, std::vector<char> chunk) {
        for (size_t r = 0; r < chunk.size(); ++r) {
          if (chunk[r]) acc[r] = 1;
        }
        return acc;
      });
}

// All width-2 subsets over m attributes, lexicographic.
std::vector<AttributeSet> Width2Subsets(size_t m) {
  std::vector<AttributeSet> out;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      out.push_back(AttributeSet::Of({a, b}));
    }
  }
  return out;
}

// All single-column PLIs of `enc`, probe tables pre-warmed so the timed
// loops measure intersections, not lazy probe builds.
std::vector<PositionListIndex> WarmSingles(const EncodedRelation& enc) {
  std::vector<PositionListIndex> singles;
  for (size_t c = 0; c < enc.num_columns(); ++c) {
    singles.push_back(PositionListIndex::FromEncoded(enc, {c}));
    (void)singles.back().probe_table();
  }
  return singles;
}

// Deterministic digest of every ordered-pair product partition: the CSR
// arrays concatenated. Two kernel levels agree iff the digests are equal.
std::vector<uint32_t> PairDigest(
    const std::vector<PositionListIndex>& singles) {
  std::vector<uint32_t> digest;
  IntersectionScratch scratch;
  for (size_t a = 0; a < singles.size(); ++a) {
    for (size_t b = 0; b < singles.size(); ++b) {
      if (a == b) continue;
      PositionListIndex p = singles[a].Intersect(singles[b], &scratch);
      digest.insert(digest.end(), p.cluster_offsets().begin(),
                    p.cluster_offsets().end());
      digest.insert(digest.end(), p.rows().begin(), p.rows().end());
    }
  }
  return digest;
}

// Deterministic digest of the counting queries over every ordered pair:
// g3 error, fan-out, and refinement verdict. Exact integers underneath,
// so kernel levels agree iff the digests are equal.
std::vector<double> CountingDigest(
    const std::vector<PositionListIndex>& singles) {
  std::vector<double> digest;
  for (size_t a = 0; a < singles.size(); ++a) {
    for (size_t b = 0; b < singles.size(); ++b) {
      if (a == b) continue;
      digest.push_back(singles[a].G3Error(singles[b]));
      digest.push_back(static_cast<double>(singles[a].MaxFanout(singles[b])));
      digest.push_back(singles[a].Refines(singles[b]) ? 1.0 : 0.0);
    }
  }
  return digest;
}

double TimeCountingQueries(const std::vector<PositionListIndex>& singles) {
  return TimeMs([&] {
    double total = 0.0;
    for (size_t a = 0; a < singles.size(); ++a) {
      for (size_t b = 0; b < singles.size(); ++b) {
        if (a == b) continue;
        total += singles[a].G3Error(singles[b]);
        total += static_cast<double>(singles[a].MaxFanout(singles[b]));
      }
    }
    if (total < 0.0) std::abort();
  });
}

double TimePairIntersects(const std::vector<PositionListIndex>& singles) {
  IntersectionScratch scratch;
  return TimeMs([&] {
    size_t total = 0;
    for (size_t a = 0; a < singles.size(); ++a) {
      for (size_t b = 0; b < singles.size(); ++b) {
        if (a == b) continue;
        total +=
            singles[a].Intersect(singles[b], &scratch).num_clusters();
      }
    }
    if (total == SIZE_MAX) std::abort();
  });
}

int Main() {
  const std::vector<size_t> kRowCounts = {10000, 50000, 200000};
  std::vector<BenchRecord> records;
  double speedup_50k = 0.0;
  double tiled_sweep_50k = 0.0;
  double prefetch_intersect_200k = 0.0;
  double radix_build_4m = 0.0;
  double simd_lowcard_50k = 0.0;
  bool simd_parity_ok = true;

  for (size_t rows : kRowCounts) {
    Relation relation = std::move(datasets::SyntheticUniform(
                                      rows, /*num_categorical=*/6,
                                      /*num_continuous=*/2,
                                      /*domain_size=*/48, /*seed=*/7))
                            .ValueOrDie();
    EncodedRelation enc = EncodedRelation::Encode(relation);
    const size_t m = enc.num_columns();
    std::printf("dataset: synthetic uniform, %zu rows x %zu attrs\n",
                enc.num_rows(), m);

    // --- Parity: both layouts must agree bit-for-bit ------------------
    for (size_t c = 0; c < m; ++c) {
      LegacyPli legacy = LegacyFromEncoded(enc, {c});
      PositionListIndex csr = PositionListIndex::FromEncoded(enc, {c});
      if (legacy.clusters != csr.ToNestedClusters()) {
        std::fprintf(stderr, "parity FAILED: column %zu clusters\n", c);
        return 1;
      }
    }
    const std::vector<AttributeSet> subsets = Width2Subsets(m);
    std::vector<char> rebuild_bits = SweepByRebuild(enc, subsets);
    {
      PliCache cache(&enc);
      auto extend = IdentifiableRowsForSubsets(cache, subsets);
      if (!extend.ok()) std::abort();
      for (size_t r = 0; r < rows; ++r) {
        if (static_cast<bool>(rebuild_bits[r]) != (*extend)[r]) {
          std::fprintf(stderr, "parity FAILED: sweep verdict row %zu\n", r);
          return 1;
        }
      }
    }

    // --- build: all single-column partitions --------------------------
    double nested_build = TimeMs([&] {
      size_t total = 0;
      for (size_t c = 0; c < m; ++c) {
        total += LegacyFromEncoded(enc, {c}).clusters.size();
      }
      if (total == SIZE_MAX) std::abort();  // keep the loop observable
    });
    double csr_build = TimeMs([&] {
      size_t total = 0;
      for (size_t c = 0; c < m; ++c) {
        total += PositionListIndex::FromEncoded(enc, {c}).num_clusters();
      }
      if (total == SIZE_MAX) std::abort();
    });

    // --- intersect: all ordered pairs of singles ----------------------
    std::vector<LegacyPli> legacy_singles;
    std::vector<PositionListIndex> csr_singles;
    for (size_t c = 0; c < m; ++c) {
      legacy_singles.push_back(LegacyFromEncoded(enc, {c}));
      csr_singles.push_back(PositionListIndex::FromEncoded(enc, {c}));
      (void)csr_singles.back().probe_table();  // warm the cached probes
    }
    double nested_intersect = TimeMs([&] {
      size_t total = 0;
      for (size_t a = 0; a < m; ++a) {
        for (size_t b = 0; b < m; ++b) {
          if (a == b) continue;
          total += LegacyIntersect(legacy_singles[a], legacy_singles[b])
                       .clusters.size();
        }
      }
      if (total == SIZE_MAX) std::abort();
    });
    IntersectionScratch scratch;
    double csr_intersect = TimeMs([&] {
      size_t total = 0;
      for (size_t a = 0; a < m; ++a) {
        for (size_t b = 0; b < m; ++b) {
          if (a == b) continue;
          total += csr_singles[a]
                       .Intersect(csr_singles[b], &scratch)
                       .num_clusters();
        }
      }
      if (total == SIZE_MAX) std::abort();
    });

    // --- sweep: width-2 identifiability -------------------------------
    // Cold cache per repetition: the number measured is "build every
    // width-2 partition and mark unique rows", rebuild versus extension.
    double sweep_rebuild = TimeMs([&] { SweepByRebuild(enc, subsets); });
    double sweep_extend = TimeMs([&] {
      PliCache cache(&enc);
      auto result = IdentifiableRowsForSubsets(cache, subsets);
      if (!result.ok()) std::abort();
    });

    // The tiled counting sweep behind IdentifiableRows(cache, 2): per-pair
    // count tables walked in L2-sized row tiles instead of materialized
    // pair partitions. Must agree with the extension sweep bit-for-bit.
    {
      PliCache cache(&enc);
      auto extend = IdentifiableRowsForSubsets(cache, subsets);
      auto tiled = IdentifiableRows(cache, 2);
      if (!extend.ok() || !tiled.ok() || *extend != *tiled) {
        std::fprintf(stderr, "parity FAILED: tiled sweep verdicts\n");
        return 1;
      }
    }
    double sweep_tiled = TimeMs([&] {
      PliCache cache(&enc);
      if (!IdentifiableRows(cache, 2).ok()) std::abort();
    });

    const double speedup = sweep_rebuild / sweep_extend;
    const double tiled_speedup = sweep_extend / sweep_tiled;
    if (rows == 50000) {
      speedup_50k = speedup;
      tiled_sweep_50k = tiled_speedup;
    }
    std::printf("  build     nested %8.2f ms | csr %8.2f ms\n",
                nested_build, csr_build);
    std::printf("  intersect nested %8.2f ms | csr %8.2f ms\n",
                nested_intersect, csr_intersect);
    std::printf(
        "  sweep w2  rebuild %7.2f ms | extend %6.2f ms  (%.2fx) | tiled "
        "%6.2f ms  (%.2fx)\n\n",
        sweep_rebuild, sweep_extend, speedup, sweep_tiled, tiled_speedup);

    records.push_back({"build_singles", "nested", rows, nested_build});
    records.push_back({"build_singles", "csr", rows, csr_build});
    records.push_back({"intersect_pairs", "nested", rows, nested_intersect});
    records.push_back({"intersect_pairs", "csr", rows, csr_intersect});
    records.push_back({"sweep_width2", "rebuild", rows, sweep_rebuild});
    records.push_back({"sweep_width2", "extend", rows, sweep_extend});
    records.push_back({"sweep_width2", "tiled", rows, sweep_tiled});

    // --- SIMD axis: the same CSR engine with the kernels forced to
    // scalar versus the best level the host supports. Outputs must be
    // bit-identical; timings feed the speedup fields in the JSON.
    // The low-cardinality fixture (domain 4, categorical only) drives
    // the bit-parallel AND+popcount paths of G3Error / MaxFanout /
    // Refines.
    const SimdLevel best = SupportedSimdLevel();
    EncodedRelation lowcard = EncodedRelation::Encode(
        std::move(datasets::SyntheticUniform(rows, /*num_categorical=*/6,
                                             /*num_continuous=*/0,
                                             /*domain_size=*/4, /*seed=*/13))
            .ValueOrDie());

    SetSimdLevelOverride(SimdLevel::kScalar);
    const std::vector<uint32_t> scalar_digest = PairDigest(csr_singles);
    std::vector<bool> scalar_sweep_bits;
    {
      PliCache cache(&enc);
      scalar_sweep_bits =
          std::move(IdentifiableRowsForSubsets(cache, subsets)).ValueOrDie();
    }
    std::vector<PositionListIndex> lowcard_singles = WarmSingles(lowcard);
    const std::vector<double> scalar_lowcard_digest =
        CountingDigest(lowcard_singles);
    const double scalar_lowcard_ms = TimeCountingQueries(lowcard_singles);

    SetSimdLevelOverride(best);
    if (PairDigest(csr_singles) != scalar_digest ||
        CountingDigest(lowcard_singles) != scalar_lowcard_digest) {
      std::fprintf(stderr, "SIMD parity FAILED: intersect digests\n");
      simd_parity_ok = false;
    }
    {
      PliCache cache(&enc);
      auto simd_sweep_bits =
          std::move(IdentifiableRowsForSubsets(cache, subsets)).ValueOrDie();
      if (simd_sweep_bits != scalar_sweep_bits) {
        std::fprintf(stderr, "SIMD parity FAILED: sweep verdicts\n");
        simd_parity_ok = false;
      }
    }
    const double simd_lowcard_ms = TimeCountingQueries(lowcard_singles);
    ClearSimdLevelOverride();

    const double sl = scalar_lowcard_ms / simd_lowcard_ms;
    if (rows == 50000) simd_lowcard_50k = sl;
    std::printf("  simd (%s) lowcard g3 %6.2f -> %6.2f ms (%.2fx)\n",
                SimdLevelName(best), scalar_lowcard_ms, simd_lowcard_ms, sl);

    records.push_back(
        {"counting_lowcard", "scalar_kernels", rows, scalar_lowcard_ms});
    records.push_back(
        {"counting_lowcard", "simd_kernels", rows, simd_lowcard_ms});

    // --- streaming axis: probe-gather prefetch A/B --------------------
    // A high-cardinality fixture (domain ~rows/2) makes the probe-table
    // gathers cache-miss bound, which is where the software prefetch
    // earns its keep — the effect only shows once the probe tables
    // outgrow L2, so the acceptance key is the 200k-row entry. The
    // prefetch may not change any output.
    EncodedRelation highcard = EncodedRelation::Encode(
        std::move(datasets::SyntheticUniform(
                      rows, /*num_categorical=*/4, /*num_continuous=*/0,
                      /*domain_size=*/rows / 2, /*seed=*/17))
            .ValueOrDie());
    SetStreamingOptsEnabled(false);
    std::vector<PositionListIndex> plain_singles = WarmSingles(highcard);
    const std::vector<uint32_t> plain_digest = PairDigest(plain_singles);
    const double plain_intersect_ms = TimePairIntersects(plain_singles);

    SetStreamingOptsEnabled(true);
    std::vector<PositionListIndex> stream_singles = WarmSingles(highcard);
    if (PairDigest(stream_singles) != plain_digest) {
      std::fprintf(stderr, "streaming parity FAILED: highcard digests\n");
      simd_parity_ok = false;
    }
    const double stream_intersect_ms = TimePairIntersects(stream_singles);

    const double pf = plain_intersect_ms / stream_intersect_ms;
    if (rows == 200000) prefetch_intersect_200k = pf;
    std::printf(
        "  streaming highcard intersect %6.2f -> %6.2f ms (%.2fx)\n\n",
        plain_intersect_ms, stream_intersect_ms, pf);

    records.push_back(
        {"intersect_highcard", "no_prefetch", rows, plain_intersect_ms});
    records.push_back(
        {"intersect_highcard", "prefetch", rows, stream_intersect_ms});
  }

  // --- radix scatter A/B: FromCodes at the scale where it engages -----
  // The radix-partitioned scatter only switches on past ~1M distinct
  // codes with n >= 2x codes (below that the direct scatter's cursor
  // tables still fit in cache), so it gets its own fixture: 4M rows over
  // a 2M-code domain, raw codes with no Relation behind them. The two
  // paths must produce bit-identical CSR arenas.
  {
    const size_t n = 4000000;
    const uint32_t num_codes = 2000000;
    std::vector<uint32_t> codes(n);
    Rng rng(19);
    for (size_t i = 0; i < n; ++i) {
      codes[i] = static_cast<uint32_t>(rng.UniformIndex(num_codes));
    }
    SetStreamingOptsEnabled(false);
    PositionListIndex direct = PositionListIndex::FromCodes(codes, num_codes);
    const double direct_ms = TimeMs([&] {
      if (PositionListIndex::FromCodes(codes, num_codes).num_rows() != n) {
        std::abort();
      }
    });
    SetStreamingOptsEnabled(true);
    PositionListIndex radix = PositionListIndex::FromCodes(codes, num_codes);
    if (radix.rows() != direct.rows() ||
        radix.cluster_offsets() != direct.cluster_offsets()) {
      std::fprintf(stderr, "streaming parity FAILED: radix scatter arena\n");
      simd_parity_ok = false;
    }
    const double radix_ms = TimeMs([&] {
      if (PositionListIndex::FromCodes(codes, num_codes).num_rows() != n) {
        std::abort();
      }
    });
    radix_build_4m = direct_ms / radix_ms;
    std::printf("radix scatter 4M rows / 2M codes: %.2f -> %.2f ms (%.2fx)\n",
                direct_ms, radix_ms, radix_build_4m);
    records.push_back({"build_highcard", "direct_scatter", n, direct_ms});
    records.push_back({"build_highcard", "radix_scatter", n, radix_ms});
  }

  std::ofstream json("BENCH_partition.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"sweep_width2_speedup_50k\": " << speedup_50k
       << ",\n  \"simd_parity\": \""
       << (simd_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"tiled_sweep_speedup_50k\": " << tiled_sweep_50k
       << ",\n  \"prefetch_intersect_speedup_200k\": "
       << prefetch_intersect_200k
       << ",\n  \"radix_build_speedup_4m\": " << radix_build_4m
       << ",\n  \"simd_lowcard_speedup_50k\": " << simd_lowcard_50k
       << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"layout\": \"" << r.layout
         << "\", \"rows\": " << r.rows << ", \"ms\": " << r.ms << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_partition.json (%zu records, 50k sweep %.2fx)\n",
              records.size(), speedup_50k);
  return simd_parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
