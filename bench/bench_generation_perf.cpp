// A9 — Throughput of the adversarial generation and leakage evaluation
// paths per dependency class (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/datasets/synthetic.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

struct Fixture {
  Relation real;
  MetadataPackage metadata;
};

// One planted-structure relation reused across the benchmarks.
const Fixture& SharedFixture(size_t rows) {
  static auto* cache = new std::map<size_t, Fixture>();
  auto it = cache->find(rows);
  if (it != cache->end()) return it->second;

  datasets::SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 7;
  datasets::SyntheticAttribute a;
  a.name = "a";
  a.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  a.domain_size = 16;
  datasets::SyntheticAttribute b;
  b.name = "b";
  b.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  b.lo = 0;
  b.hi = 1000;
  datasets::SyntheticAttribute c;
  c.name = "c";
  c.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  c.source = 1;
  c.domain_size = 0;
  datasets::SyntheticAttribute d;
  d.name = "d";
  d.kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout;
  d.source = 0;
  d.domain_size = 24;
  d.fanout = 3;
  config.attributes = {a, b, c, d};

  Fixture fixture{std::move(datasets::Synthetic(config)).ValueOrDie(), {}};
  DiscoveryOptions discovery;
  fixture.metadata =
      std::move(ProfileRelation(fixture.real, discovery)).ValueOrDie()
          .metadata;
  return cache->emplace(rows, std::move(fixture)).first->second;
}

GenerationOptions OptionsFor(const std::string& method) {
  GenerationOptions out;
  if (method == "random") {
    out.ignore_dependencies = true;
  } else if (method == "fd") {
    out.allowed_kinds = {DependencyKind::kFunctional};
  } else if (method == "od") {
    out.allowed_kinds = {DependencyKind::kOrder};
  } else if (method == "nd") {
    out.allowed_kinds = {DependencyKind::kNumerical};
  }
  return out;
}

void RunGeneration(benchmark::State& state, const std::string& method) {
  const Fixture& fixture =
      SharedFixture(static_cast<size_t>(state.range(0)));
  Rng rng(1);
  GenerationOptions options = OptionsFor(method);
  for (auto _ : state) {
    auto outcome = GenerateSynthetic(
        fixture.metadata, fixture.real.num_rows(), &rng, options);
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_GenerateRandom(benchmark::State& state) {
  RunGeneration(state, "random");
}
void BM_GenerateFd(benchmark::State& state) { RunGeneration(state, "fd"); }
void BM_GenerateOd(benchmark::State& state) { RunGeneration(state, "od"); }
void BM_GenerateNd(benchmark::State& state) { RunGeneration(state, "nd"); }

BENCHMARK(BM_GenerateRandom)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateFd)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateOd)->Arg(1000)->Arg(10000)->Arg(100000);
BENCHMARK(BM_GenerateNd)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EvaluateLeakage(benchmark::State& state) {
  const Fixture& fixture =
      SharedFixture(static_cast<size_t>(state.range(0)));
  Rng rng(2);
  GenerationOptions options;
  options.ignore_dependencies = true;
  Relation synthetic =
      std::move(GenerateSynthetic(fixture.metadata,
                                  fixture.real.num_rows(), &rng, options))
          .ValueOrDie()
          .relation;
  for (auto _ : state) {
    auto report = EvaluateLeakage(fixture.real, synthetic);
    benchmark::DoNotOptimize(report.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvaluateLeakage)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_MetadataSerialize(benchmark::State& state) {
  const Fixture& fixture =
      SharedFixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string wire = fixture.metadata.Serialize();
    benchmark::DoNotOptimize(wire.size());
  }
}
BENCHMARK(BM_MetadataSerialize)->Arg(10000);

void BM_MetadataDeserialize(benchmark::State& state) {
  const Fixture& fixture =
      SharedFixture(static_cast<size_t>(state.range(0)));
  std::string wire = fixture.metadata.Serialize();
  for (auto _ : state) {
    auto parsed = MetadataPackage::Deserialize(wire);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_MetadataDeserialize)->Arg(10000);

}  // namespace
}  // namespace metaleak

BENCHMARK_MAIN();
