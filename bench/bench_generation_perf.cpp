// Attack-pipeline bench: the dictionary-encoded code path (generation
// into an EncodedBatch arena + leakage over translated codes) versus the
// boxed-Value reference path, end to end through the experiment runner
// at 10k-200k rows.
//
// Before timing anything the bench asserts the two paths produce
// bit-identical experiment results (same per-round seeds, means,
// stddevs, MSEs); any disagreement exits non-zero. Results go to
// BENCH_generation.json, including the code-path speedup at each row
// count (the acceptance number is the 50k-row entry).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "discovery/discovery_engine.h"
#include "generation/generation_engine.h"
#include "privacy/experiment.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

struct Fixture {
  Relation real;
  MetadataPackage metadata;
};

// One planted-structure relation per row count: a categorical base, a
// continuous base, a monotone derivation (FD + OD) and a bounded-fanout
// derivation (ND), so every timed method generates through a real
// dependency.
Fixture MakeFixture(size_t rows) {
  datasets::SyntheticConfig config;
  config.num_rows = rows;
  config.seed = 7;
  datasets::SyntheticAttribute a;
  a.name = "a";
  a.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
  a.domain_size = 16;
  datasets::SyntheticAttribute b;
  b.name = "b";
  b.kind = datasets::SyntheticAttribute::Kind::kContinuousBase;
  b.lo = 0;
  b.hi = 1000;
  datasets::SyntheticAttribute c;
  c.name = "c";
  c.kind = datasets::SyntheticAttribute::Kind::kDerivedMonotone;
  c.source = 1;
  c.domain_size = 0;
  datasets::SyntheticAttribute d;
  d.name = "d";
  d.kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout;
  d.source = 0;
  d.domain_size = 24;
  d.fanout = 3;
  config.attributes = {a, b, c, d};

  Fixture fixture{std::move(datasets::Synthetic(config)).ValueOrDie(), {}};
  fixture.metadata =
      std::move(ProfileRelation(fixture.real, DiscoveryOptions{}))
          .ValueOrDie()
          .metadata;
  return fixture;
}

const std::vector<GenerationMethod> kMethods = {
    GenerationMethod::kRandom,
    GenerationMethod::kFd,
    GenerationMethod::kNd,
    GenerationMethod::kOd,
};

bool BitIdentical(const std::vector<MethodResult>& a,
                  const std::vector<MethodResult>& b) {
  if (a.size() != b.size()) return false;
  for (size_t m = 0; m < a.size(); ++m) {
    if (a[m].round_seeds != b[m].round_seeds) return false;
    if (a[m].attributes.size() != b[m].attributes.size()) return false;
    for (size_t c = 0; c < a[m].attributes.size(); ++c) {
      const MethodAttributeResult& x = a[m].attributes[c];
      const MethodAttributeResult& y = b[m].attributes[c];
      if (x.mean_matches != y.mean_matches ||
          x.stddev_matches != y.stddev_matches ||
          x.covered != y.covered ||
          x.mean_mse.has_value() != y.mean_mse.has_value()) {
        return false;
      }
      if (x.mean_mse.has_value() && *x.mean_mse != *y.mean_mse) {
        return false;
      }
    }
  }
  return true;
}

struct BenchRecord {
  std::string path;
  size_t rows = 0;
  size_t rounds = 0;
  double ms = 0.0;
  double rounds_per_sec = 0.0;
  double rows_per_sec = 0.0;
};

// Times the fused Def 2.2/2.3 leakage scan (EncodedLeakageContext::
// Evaluate) over pre-generated batches, with the kernels forced to
// scalar and to the best supported level. Returns {scalar_ms, simd_ms}
// and reports bitwise parity of the accumulated per-attribute stats.
struct LeakageScanAxis {
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  bool parity_ok = true;
};

LeakageScanAxis TimeLeakageScan(const Fixture& fixture, size_t rounds) {
  LeakageScanAxis axis;
  const size_t n = fixture.real.num_rows();
  EncodedRelation encoded = EncodedRelation::Encode(fixture.real);
  GenerationContext gen =
      std::move(GenerationContext::Build(fixture.metadata)).ValueOrDie();
  EncodedLeakageContext ctx =
      std::move(EncodedLeakageContext::Build(encoded, gen.schema(),
                                             gen.domains(), {}))
          .ValueOrDie();
  if (!ctx.supported()) std::abort();

  // Pre-generate a small pool of batches and cycle through it, so the
  // timed loop is the scan alone, not the generator.
  constexpr size_t kPool = 8;
  std::vector<EncodedBatch> pool(kPool);
  Rng rng(11);
  for (EncodedBatch& batch : pool) {
    Rng round_rng = rng.Fork();
    if (!GenerateEncoded(gen, n, &round_rng, &batch).ok()) std::abort();
  }

  const size_t m = ctx.num_attributes();
  std::vector<AttributeRoundStats> stats(m);
  auto run = [&](double* ms) {
    // Accumulated totals over every round, for the parity check.
    std::vector<AttributeRoundStats> total(m);
    auto start = std::chrono::steady_clock::now();
    for (size_t round = 0; round < rounds; ++round) {
      if (!ctx.Evaluate(pool[round % kPool], stats.data()).ok()) {
        std::abort();
      }
      for (size_t c = 0; c < m; ++c) {
        total[c].matches += stats[c].matches;
        total[c].mse += stats[c].mse;
        total[c].has_mse = stats[c].has_mse;
      }
    }
    auto stop = std::chrono::steady_clock::now();
    *ms = std::chrono::duration<double, std::milli>(stop - start).count();
    return total;
  };

  SetSimdLevelOverride(SimdLevel::kScalar);
  const std::vector<AttributeRoundStats> scalar_total = run(&axis.scalar_ms);
  SetSimdLevelOverride(SupportedSimdLevel());
  const std::vector<AttributeRoundStats> simd_total = run(&axis.simd_ms);
  ClearSimdLevelOverride();

  for (size_t c = 0; c < m; ++c) {
    // Bitwise double comparison: the kernels promise byte-identical
    // accumulation, not just approximate agreement.
    uint64_t a, b;
    std::memcpy(&a, &scalar_total[c].mse, sizeof(a));
    std::memcpy(&b, &simd_total[c].mse, sizeof(b));
    if (scalar_total[c].matches != simd_total[c].matches || a != b ||
        scalar_total[c].has_mse != simd_total[c].has_mse) {
      axis.parity_ok = false;
    }
  }
  return axis;
}

int Main() {
  struct Size {
    size_t rows;
    size_t rounds;
  };
  const std::vector<Size> kSizes = {{10000, 60}, {50000, 100}, {200000, 20}};
  std::vector<BenchRecord> records;
  double speedup_50k = 0.0;
  double simd_scan_50k = 0.0;
  bool simd_parity_ok = true;

  for (const Size& size : kSizes) {
    Fixture fixture = MakeFixture(size.rows);
    std::printf("dataset: planted synthetic, %zu rows x %zu attrs\n",
                fixture.real.num_rows(), fixture.real.num_columns());

    // The speedup claim is vacuous unless the code path is live.
    auto ctx = GenerationContext::Build(fixture.metadata);
    if (!ctx.ok() || !ctx->encodable()) {
      std::fprintf(stderr, "code path not live for the bench fixture\n");
      return 1;
    }

    ExperimentEngine engine(fixture.real, fixture.metadata);
    ExperimentConfig config;
    config.rounds = size.rounds;
    config.threads = 1;

    auto time_sweep = [&](bool value_path, double* ms)
        -> Result<std::vector<MethodResult>> {
      config.use_value_path = value_path;
      auto start = std::chrono::steady_clock::now();
      auto result = engine.RunAll(kMethods, config);
      auto stop = std::chrono::steady_clock::now();
      *ms = std::chrono::duration<double, std::milli>(stop - start).count();
      return result;
    };

    double code_ms = 0.0;
    double value_ms = 0.0;
    auto code = time_sweep(false, &code_ms);
    auto value = time_sweep(true, &value_ms);
    if (!code.ok() || !value.ok()) {
      std::fprintf(stderr, "experiment failed\n");
      return 1;
    }
    if (!BitIdentical(*code, *value)) {
      std::fprintf(stderr, "parity FAILED at %zu rows: code path and "
                           "value path disagree\n",
                   size.rows);
      return 1;
    }

    const double total_rounds =
        static_cast<double>(size.rounds * kMethods.size());
    auto record = [&](const char* path, double ms) {
      BenchRecord r;
      r.path = path;
      r.rows = size.rows;
      r.rounds = size.rounds;
      r.ms = ms;
      r.rounds_per_sec = total_rounds / (ms / 1000.0);
      r.rows_per_sec =
          total_rounds * static_cast<double>(size.rows) / (ms / 1000.0);
      records.push_back(std::move(r));
    };
    record("code", code_ms);
    record("value", value_ms);

    const double speedup = value_ms / code_ms;
    if (size.rows == 50000) speedup_50k = speedup;
    std::printf(
        "  %zu rounds x %zu methods  value %8.1f ms | code %8.1f ms  "
        "(%.2fx)\n",
        size.rounds, kMethods.size(), value_ms, code_ms, speedup);

    // --- SIMD axis: the fused leakage scan, scalar vs dispatched ------
    const LeakageScanAxis scan = TimeLeakageScan(fixture, 100);
    if (!scan.parity_ok) {
      std::fprintf(stderr,
                   "SIMD parity FAILED at %zu rows: leakage scan\n",
                   size.rows);
      simd_parity_ok = false;
    }
    const double scan_speedup = scan.scalar_ms / scan.simd_ms;
    if (size.rows == 50000) simd_scan_50k = scan_speedup;
    std::printf(
        "  leakage scan x100       scalar %7.1f ms | simd %7.1f ms  "
        "(%.2fx)\n\n",
        scan.scalar_ms, scan.simd_ms, scan_speedup);
    auto scan_record = [&](const char* path, double ms) {
      BenchRecord r;
      r.path = path;
      r.rows = size.rows;
      r.rounds = 100;
      r.ms = ms;
      r.rounds_per_sec = 100.0 / (ms / 1000.0);
      r.rows_per_sec =
          100.0 * static_cast<double>(size.rows) / (ms / 1000.0);
      records.push_back(std::move(r));
    };
    scan_record("leakage_scan_scalar", scan.scalar_ms);
    scan_record("leakage_scan_simd", scan.simd_ms);
  }

  std::ofstream json("BENCH_generation.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"codepath_speedup_50k\": " << speedup_50k
       << ",\n  \"simd_parity\": \""
       << (simd_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"simd_leakage_scan_speedup_50k\": " << simd_scan_50k
       << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"path\": \"" << r.path << "\", \"rows\": " << r.rows
         << ", \"rounds\": " << r.rounds << ", \"ms\": " << r.ms
         << ", \"rounds_per_sec\": " << r.rounds_per_sec
         << ", \"rows_per_sec\": " << r.rows_per_sec << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_generation.json (%zu records, 50k speedup "
              "%.2fx, 50k simd scan %.2fx)\n",
              records.size(), speedup_50k, simd_scan_50k);
  return simd_parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
