// A5 — Ablation: identifiability (Definition 2.1) vs. quasi-identifier
// width, on the echocardiogram replica and the employee example.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "data/datasets/employee.h"
#include "privacy/identifiability.h"

using namespace metaleak;

namespace {

int RunFor(const char* title, const Relation& relation, size_t max_width) {
  TablePrinter table(std::string("A5: IDENTIFIABLE TUPLE FRACTION — ") +
                     title);
  table.SetHeader({"Subset width k", "Identifiable fraction",
                   "Minimal UCCs at width <= k"});
  for (size_t k = 1; k <= max_width; ++k) {
    Result<double> frac = IdentifiableByAnySubset(relation, k);
    Result<std::vector<AttributeSet>> uccs =
        DiscoverUniqueColumnCombinations(relation, k);
    if (!frac.ok() || !uccs.ok()) return 1;
    table.AddRow({std::to_string(k), FormatDouble(*frac, 4),
                  std::to_string(uccs->size())});
  }
  table.Print();
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  if (int rc = RunFor("employee (Table II)", datasets::Employee(), 3)) {
    return rc;
  }
  if (int rc = RunFor("echocardiogram replica",
                      datasets::Echocardiogram(), 3)) {
    return rc;
  }
  std::printf(
      "Reading: identifiability rises monotonically with the subset width\n"
      "— wider quasi-identifiers isolate more tuples (Definition 2.1), the\n"
      "property anonymization must destroy before any data sharing.\n");
  return 0;
}
