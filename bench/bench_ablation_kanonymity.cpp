// A7 — Ablation: k-anonymity as the mitigation the paper references.
//
// Sweeps k on the echocardiogram replica's demographic quasi-identifier
// and traces: minimum group size achieved, identifiable-tuple fraction
// (Definition 2.1), rows suppressed, and residual utility (distinct
// values kept in the generalized quasi-identifier).
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "data/statistics.h"
#include "privacy/anonymization.h"
#include "privacy/identifiability.h"

using namespace metaleak;

int main() {
  Relation real = datasets::Echocardiogram();
  // Quasi-identifier: age + group (what a curious party could link on).
  AttributeSet qi = AttributeSet::Of({2, 11});

  Result<double> before = IdentifiableFraction(real, qi);
  if (!before.ok()) return 1;
  std::printf(
      "Before anonymization: %.1f%% of tuples identifiable via the "
      "(age, group) quasi-identifier.\n\n",
      100.0 * *before);

  TablePrinter table(
      "A7: K-ANONYMIZATION SWEEP (quasi-identifier = {age, group})");
  table.SetHeader({"k", "Min group size", "Identifiable fraction",
                   "Rows suppressed", "Distinct age labels kept",
                   "Passes"});
  for (size_t k : {2u, 3u, 4u, 8u, 16u, 32u}) {
    AnonymizationOptions options;
    options.k = k;
    options.initial_bins = 16;
    Result<AnonymizationResult> result = Anonymize(real, qi, options);
    if (!result.ok()) {
      std::fprintf(stderr, "anonymization failed at k=%zu: %s\n", k,
                   result.status().ToString().c_str());
      return 1;
    }
    Result<size_t> min_group = MinGroupSize(result->relation, qi);
    Result<double> frac = IdentifiableFraction(result->relation, qi);
    Result<ColumnStats> age_stats =
        ComputeColumnStats(result->relation, 2);
    if (!min_group.ok() || !frac.ok() || !age_stats.ok()) return 1;
    table.AddRow({std::to_string(k), std::to_string(*min_group),
                  FormatDouble(*frac, 4),
                  std::to_string(result->suppressed_rows),
                  std::to_string(age_stats->distinct),
                  std::to_string(result->passes)});
  }
  table.Print();
  std::printf(
      "\nReading: identifiability drops to 0 at every k (the anonymizer's\n"
      "guarantee); the cost curve is the shrinking distinct-label count\n"
      "and, at large k, suppressed rows — the utility price of hiding\n"
      "tuples the paper's Definition 2.1 would otherwise expose.\n");
  return 0;
}
