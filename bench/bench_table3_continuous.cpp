// E1 — Paper Table III: privacy leakage of continuous attributes.
//
// MSE of the synthetic values against the real values on the
// echocardiogram replica, per generation method (random baseline and
// generation driven by FDs / order deps / numerical deps). NA marks
// attributes not covered by any discovered dependency of the method's
// class, exactly as in the paper. Absolute values differ from the paper
// (the replica's value ranges differ; the paper itself notes MSE scales
// with the range); the comparison of interest is *within a column*:
// dependency-informed generation ~= random generation.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  const uint64_t kSeed = 20240213;
  Relation real = datasets::Echocardiogram();
  DiscoveryOptions discovery;
  discovery.discover_afds = true;
  Result<DiscoveryReport> report = ProfileRelation(real, discovery);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  ExperimentConfig config;
  config.rounds = 300;
  config.seed = kSeed;
  std::vector<GenerationMethod> methods = {
      GenerationMethod::kRandom, GenerationMethod::kFd,
      GenerationMethod::kOd, GenerationMethod::kNd};
  Result<std::vector<MethodResult>> results =
      RunExperiment(real, report->metadata, methods, config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> kContinuousAttrs = {0, 2, 4, 5, 6, 7, 8, 9};
  TablePrinter table(
      "TABLE III: PRIVACY LEAKAGE OF CONTINUOUS ATTRIBUTES (MSE, " +
      std::to_string(config.rounds) + " rounds, seed " +
      std::to_string(kSeed) + ")");
  std::vector<std::string> header = {"Dep"};
  for (size_t c : kContinuousAttrs) {
    header.push_back("Attr " + std::to_string(c));
  }
  table.SetHeader(std::move(header));

  static const char* kRowNames[] = {"Rand Gen", "Func Dep", "Ord Dep",
                                    "Num Dep"};
  for (size_t m = 0; m < results->size(); ++m) {
    std::vector<std::string> row = {kRowNames[m]};
    for (size_t c : kContinuousAttrs) {
      Result<MethodAttributeResult> a = (*results)[m].ForAttribute(c);
      if (!a.ok() || (!a->covered && m != 0) || !a->mean_mse.has_value()) {
        row.push_back("NA");
      } else {
        row.push_back(FormatDouble(*a->mean_mse, 2));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nReading: per column, Func/Ord/Num Dep MSE ~= Rand Gen MSE — the\n"
      "dependencies add no extra leakage (paper Section V, Table III).\n");
  return 0;
}
