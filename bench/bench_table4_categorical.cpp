// E2 — Paper Table IV: privacy leakage of categorical attributes.
//
// Positive exact matches at the same tuple index (Definition 2.2) on the
// echocardiogram replica, per generation method, averaged over rounds.
// NA marks attributes no discovered dependency of the class covers.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  const uint64_t kSeed = 20240214;
  Relation real = datasets::Echocardiogram();
  Result<DiscoveryReport> report = ProfileRelation(real);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  ExperimentConfig config;
  config.rounds = 1000;
  config.seed = kSeed;
  std::vector<GenerationMethod> methods = {
      GenerationMethod::kRandom, GenerationMethod::kFd,
      GenerationMethod::kOd, GenerationMethod::kNd};
  Result<std::vector<MethodResult>> results =
      RunExperiment(real, report->metadata, methods, config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  const std::vector<size_t> kCategoricalAttrs = {1, 3, 11, 12};
  TablePrinter table(
      "TABLE IV: PRIVACY LEAKAGE OF CATEGORICAL ATTRIBUTES (positive "
      "matches, " + std::to_string(config.rounds) + " rounds, seed " +
      std::to_string(kSeed) + ")");
  std::vector<std::string> header = {"Dependency"};
  for (size_t c : kCategoricalAttrs) {
    header.push_back("Attr " + std::to_string(c));
  }
  table.SetHeader(std::move(header));

  static const char* kRowNames[] = {"Random Generation", "Functional Dep",
                                    "Order Dep", "Numerical Dep"};
  for (size_t m = 0; m < results->size(); ++m) {
    std::vector<std::string> row = {kRowNames[m]};
    for (size_t c : kCategoricalAttrs) {
      Result<MethodAttributeResult> a = (*results)[m].ForAttribute(c);
      if (!a.ok() || (!a->covered && m != 0)) {
        row.push_back("NA");
      } else {
        row.push_back(FormatDouble(a->mean_matches, 3));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  // Companion: the binomial expectation N/|D| per attribute.
  Result<std::vector<Domain>> domains = report->metadata.RequireDomains();
  if (domains.ok()) {
    std::printf("\nAnalytical E[matches] = N/|D| (Section III-A):\n");
    for (size_t c : kCategoricalAttrs) {
      size_t compared = 0;
      for (const Value& v : real.column(c)) {
        if (!v.is_null()) ++compared;
      }
      std::printf("  Attr %-3zu |D|=%-4.0f E=%s\n", c,
                  (*domains)[c].Size(),
                  FormatDouble(ExpectedRandomCategoricalMatches(
                                   compared, (*domains)[c]),
                               3)
                      .c_str());
    }
  }
  std::printf(
      "\nReading: dependency-informed rows stay close to the random row —\n"
      "FDs/RFDs add little value for an adversary (paper Table IV).\n");
  return 0;
}
