// Lattice-kernel bench: per-class discovery wall time on the shared
// level-wise kernel (discovery/lattice.h) versus the pre-kernel
// hand-rolled pairwise loops, and the cost of raising max_lhs from the
// canonical 1 to 2.
//
// The "pairwise" rows reimplement (inline, against the public validator
// API) exactly the loops the kernel replaced: one ordered (lhs, rhs)
// scan per class with the same eligibility filters. They exist only at
// max_lhs = 1 — multi-attribute search is what the kernel added. The
// bench asserts that kernel@1 and pairwise agree on the dependency
// count before timing anything, then writes one record per
// class x path x max_lhs to BENCH_lattice.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/simd.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "discovery/validators.h"
#include "metadata/dependency_set.h"
#include "partition/pli_cache.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string search;
  std::string path;  // "kernel" or "pairwise"
  size_t max_lhs = 0;
  double ms = 0.0;
  size_t deps = 0;
};

constexpr int kReps = 3;  // keep the best (least-disturbed) repetition
constexpr double kMaxG3 = 0.05;

template <typename Fn>
double TimeMs(Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

template <typename Fn>
void Record(const std::string& search, const std::string& path,
            size_t max_lhs, Fn&& fn, std::vector<BenchRecord>& out) {
  BenchRecord rec;
  rec.search = search;
  rec.path = path;
  rec.max_lhs = max_lhs;
  rec.deps = fn();  // warm-up + dependency count
  rec.ms = TimeMs([&] { (void)fn(); });
  std::printf("%-8s %-9s max_lhs=%zu  %9.2f ms  %4zu deps\n",
              search.c_str(), path.c_str(), max_lhs, rec.ms, rec.deps);
  out.push_back(rec);
}

// --- The deleted pairwise loops, reconstructed --------------------------

size_t PairwiseFdAfd(const EncodedRelation& enc) {
  PliCache cache(&enc);
  size_t found = 0;
  for (size_t rhs = 0; rhs < enc.num_columns(); ++rhs) {
    for (size_t lhs = 0; lhs < enc.num_columns(); ++lhs) {
      if (lhs == rhs) continue;
      if (ValidateFd(&cache, AttributeSet::Single(lhs), rhs)) {
        ++found;
      } else if (ComputeG3(&cache, AttributeSet::Single(lhs), rhs) <=
                 kMaxG3) {
        ++found;
      }
    }
  }
  return found;
}

size_t PairwiseOrder(const EncodedRelation& enc, bool strict) {
  OdDiscoveryOptions options;
  size_t found = 0;
  for (size_t lhs = 0; lhs < enc.num_columns(); ++lhs) {
    if (enc.dictionary(lhs).num_distinct() < options.min_lhs_distinct) {
      continue;
    }
    for (size_t rhs = 0; rhs < enc.num_columns(); ++rhs) {
      if (lhs == rhs) continue;
      bool holds = strict ? ValidateOfd(enc, lhs, rhs)
                          : ValidateOd(enc, lhs, rhs);
      if (holds) ++found;
    }
  }
  return found;
}

size_t PairwiseNd(const EncodedRelation& enc) {
  NdDiscoveryOptions options;
  PliCache cache(&enc);
  size_t found = 0;
  for (size_t lhs = 0; lhs < enc.num_columns(); ++lhs) {
    for (size_t rhs = 0; rhs < enc.num_columns(); ++rhs) {
      if (lhs == rhs) continue;
      size_t distinct_y = enc.dictionary(rhs).num_distinct();
      if (distinct_y < 2) continue;
      size_t k = ComputeMaxFanout(&cache, lhs, rhs);
      if (k <= 1) continue;
      bool small_enough = static_cast<double>(k) <=
                          options.max_fanout_fraction *
                              static_cast<double>(distinct_y);
      bool has_slack = k + options.min_slack <= distinct_y;
      if (small_enough && has_slack) ++found;
    }
  }
  return found;
}

size_t PairwiseDd(const EncodedRelation& enc) {
  DdDiscoveryOptions options;
  std::vector<size_t> numeric =
      enc.schema().IndicesOf(SemanticType::kContinuous);
  size_t found = 0;
  for (size_t lhs : numeric) {
    Domain dl = std::move(enc.DomainOf(lhs)).ValueOrDie();
    if (dl.range() <= 0.0) continue;
    for (size_t rhs : numeric) {
      if (lhs == rhs) continue;
      Domain dr = std::move(enc.DomainOf(rhs)).ValueOrDie();
      if (dr.range() <= 0.0) continue;
      double eps = options.epsilon_fraction * dl.range();
      double delta =
          std::move(ComputeMinimalDelta(enc, lhs, rhs, eps)).ValueOrDie();
      if (delta <= options.max_delta_fraction * dr.range()) ++found;
    }
  }
  return found;
}

int Main() {
  constexpr size_t kRows = 4000;
  Relation relation = std::move(datasets::SyntheticUniform(
                                    kRows, /*num_categorical=*/4,
                                    /*num_continuous=*/3,
                                    /*domain_size=*/16, /*seed=*/7))
                          .ValueOrDie();
  EncodedRelation enc = EncodedRelation::Encode(relation);
  std::printf("dataset: synthetic uniform, %zu rows x %zu attrs\n\n",
              enc.num_rows(), enc.num_columns());

  auto kernel_fds = [&](size_t max_lhs) {
    TaneOptions options;
    options.max_lhs_size = max_lhs;
    options.max_g3_error = kMaxG3;
    options.include_constant_columns = false;
    auto result = DiscoverFds(enc, options);
    if (!result.ok()) std::abort();
    return result->dependencies.size();
  };
  std::vector<BenchRecord> records;

  // FD/AFD. The pairwise row approximates the old dedicated TANE loop
  // with a flat scan; counts can differ from the kernel (no minimality
  // logic), so no parity assertion for this class.
  Record("FD/AFD", "pairwise", 1, [&] { return PairwiseFdAfd(enc); },
         records);
  Record("FD/AFD", "kernel", 1, [&] { return kernel_fds(1); }, records);
  Record("FD/AFD", "kernel", 2, [&] { return kernel_fds(2); }, records);

  // The four relaxed classes: pairwise and kernel agree exactly at
  // max_lhs = 1 (checked below before timing).
  struct RfdClass {
    const char* name;
    size_t (*pairwise)(const EncodedRelation&);
    size_t (*kernel)(const EncodedRelation&, size_t);
  };
  const RfdClass classes[] = {
      {"OD",
       [](const EncodedRelation& e) { return PairwiseOrder(e, false); },
       [](const EncodedRelation& e, size_t max_lhs) {
         OdDiscoveryOptions options;
         options.max_lhs = max_lhs;
         auto result = DiscoverOds(e, options);
         if (!result.ok()) std::abort();
         return result->size();
       }},
      {"OFD",
       [](const EncodedRelation& e) { return PairwiseOrder(e, true); },
       [](const EncodedRelation& e, size_t max_lhs) {
         OdDiscoveryOptions options;
         options.max_lhs = max_lhs;
         auto result = DiscoverOfds(e, options);
         if (!result.ok()) std::abort();
         return result->size();
       }},
      {"ND", &PairwiseNd,
       [](const EncodedRelation& e, size_t max_lhs) {
         NdDiscoveryOptions options;
         options.max_lhs = max_lhs;
         auto result = DiscoverNds(e, options);
         if (!result.ok()) std::abort();
         return result->size();
       }},
      {"DD", &PairwiseDd,
       [](const EncodedRelation& e, size_t max_lhs) {
         DdDiscoveryOptions options;
         options.max_lhs = max_lhs;
         auto result = DiscoverDds(e, options);
         if (!result.ok()) std::abort();
         return result->size();
       }},
  };
  for (const RfdClass& c : classes) {
    size_t pairwise_deps = c.pairwise(enc);
    size_t kernel_deps = c.kernel(enc, 1);
    if (pairwise_deps != kernel_deps) {
      std::fprintf(stderr,
                   "%s parity FAILED: pairwise=%zu kernel=%zu\n", c.name,
                   pairwise_deps, kernel_deps);
      return 1;
    }
    Record(c.name, "pairwise", 1, [&] { return c.pairwise(enc); },
           records);
    Record(c.name, "kernel", 1, [&] { return c.kernel(enc, 1); },
           records);
    Record(c.name, "kernel", 2, [&] { return c.kernel(enc, 2); },
           records);
  }

  std::ofstream json("BENCH_lattice.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"rows\": " << enc.num_rows()
       << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"search\": \"" << r.search << "\", \"path\": \""
         << r.path << "\", \"max_lhs\": " << r.max_lhs
         << ", \"ms\": " << r.ms << ", \"deps\": " << r.deps << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_lattice.json (%zu records)\n",
              records.size());
  return 0;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
