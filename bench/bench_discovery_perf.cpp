// A4 — Discovery throughput: TANE / OD / ND / DD scaling in rows and
// columns (google-benchmark).
#include <benchmark/benchmark.h>

#include "data/datasets/echocardiogram.h"
#include "data/datasets/synthetic.h"
#include "discovery/discovery_engine.h"
#include "discovery/rfd_discovery.h"
#include "discovery/tane.h"
#include "partition/position_list_index.h"

namespace metaleak {
namespace {

Relation UniformRelation(size_t rows, size_t cats, size_t conts,
                         size_t domain) {
  return std::move(
             datasets::SyntheticUniform(rows, cats, conts, domain, 1234))
      .ValueOrDie();
}

void BM_PliConstruction(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 1, 0,
                                 32);
  for (auto _ : state) {
    PositionListIndex pli =
        PositionListIndex::FromColumn(rel.column(0));
    benchmark::DoNotOptimize(pli.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliConstruction)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PliIntersection(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 2, 0,
                                 32);
  PositionListIndex a = PositionListIndex::FromColumn(rel.column(0));
  PositionListIndex b = PositionListIndex::FromColumn(rel.column(1));
  for (auto _ : state) {
    PositionListIndex ab = a.Intersect(b);
    benchmark::DoNotOptimize(ab.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliIntersection)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TaneRows(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 6, 0,
                                 8);
  TaneOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto result = DiscoverFds(rel, options);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TaneRows)->Arg(500)->Arg(2000)->Arg(8000);

void BM_TaneColumns(benchmark::State& state) {
  Relation rel = UniformRelation(1000, static_cast<size_t>(state.range(0)),
                                 0, 6);
  TaneOptions options;
  options.max_lhs_size = 3;
  for (auto _ : state) {
    auto result = DiscoverFds(rel, options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_TaneColumns)->Arg(4)->Arg(8)->Arg(12);

void BM_TaneEchocardiogram(benchmark::State& state) {
  Relation rel = datasets::Echocardiogram();
  TaneOptions options;
  options.max_lhs_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = DiscoverFds(rel, options);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_TaneEchocardiogram)->Arg(1)->Arg(2)->Arg(3);

void BM_OdDiscovery(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 0, 6,
                                 8);
  for (auto _ : state) {
    auto result = DiscoverOds(rel);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OdDiscovery)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_NdDiscovery(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 6, 0,
                                 12);
  for (auto _ : state) {
    auto result = DiscoverNds(rel);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NdDiscovery)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_DdDiscovery(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 0, 4,
                                 8);
  for (auto _ : state) {
    auto result = DiscoverDds(rel);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DdDiscovery)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_FullProfile(benchmark::State& state) {
  Relation rel = datasets::Echocardiogram();
  for (auto _ : state) {
    auto report = ProfileRelation(rel);
    benchmark::DoNotOptimize(report.ok());
  }
}
BENCHMARK(BM_FullProfile);

}  // namespace
}  // namespace metaleak

BENCHMARK_MAIN();
