// A1 — Ablation: leakage vs. domain size |D_A|.
//
// Section III-A: E[matches] = N/|D_A|, so privacy leakage (>= 1 expected
// correct generation) sets in exactly when |D_A| <= N. This bench sweeps
// the domain size at fixed N and shows the crossover.
#include <cstdio>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/synthetic.h"
#include "data/domain.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  const size_t kRows = 132;  // echocardiogram-sized
  TablePrinter table(
      "A1: LEAKAGE VS DOMAIN SIZE (random generation, N=" +
      std::to_string(kRows) + ", 2000 rounds)");
  table.SetHeader({"|D|", "E[matches] = N/|D|", "Measured mean",
                   "P[>=1 match]", "Leakage expected?"});

  for (size_t domain_size : {2u, 4u, 8u, 16u, 33u, 66u, 132u, 264u, 528u}) {
    Result<Relation> rel =
        datasets::SyntheticUniform(kRows, 1, 0, domain_size, domain_size);
    if (!rel.ok()) return 1;
    Result<DiscoveryReport> report = ProfileRelation(*rel);
    if (!report.ok()) return 1;
    // Disclose the *declared* domain (all labels the attribute may take),
    // as in the paper's age example — the observed distinct set can never
    // exceed N and would hide the crossover.
    std::vector<Value> declared;
    declared.reserve(domain_size);
    for (size_t i = 0; i < domain_size; ++i) {
      declared.push_back(Value::Str("v" + std::to_string(i)));
    }
    MetadataPackage metadata = report->metadata;
    metadata.domains[0] = Domain::Categorical(std::move(declared));
    ExperimentConfig config;
    config.rounds = 2000;
    config.seed = domain_size;
    Result<MethodResult> result =
        RunMethod(*rel, metadata, GenerationMethod::kRandom, config);
    if (!result.ok()) return 1;
    Result<std::vector<Domain>> domains = metadata.RequireDomains();
    double expected =
        ExpectedRandomCategoricalMatches(kRows, (*domains)[0]);
    double at_least_one =
        BinomialAtLeastOne(static_cast<int64_t>(kRows),
                           1.0 / (*domains)[0].Size());
    table.AddRow({std::to_string(domain_size), FormatDouble(expected, 3),
                  FormatDouble(result->attributes[0].mean_matches, 3),
                  FormatDouble(at_least_one, 4),
                  expected >= 1.0 ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "\nReading: the crossover sits at |D| = N — sharing small domains\n"
      "already implies expected leakage (Section III-A).\n");
  return 0;
}
