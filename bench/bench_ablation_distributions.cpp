// A6 — Ablation: what if value distributions were shared too?
//
// The paper's analysis assumes "the distribution remains undisclosed"
// and the adversary samples uniformly. This bench adds a disclosure
// level beyond the paper's model (empirical histograms / frequency
// tables) and measures the extra leakage on the echocardiogram replica —
// quantifying why the uniform assumption is the safe boundary.
#include <cstdio>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  Relation real = datasets::Echocardiogram();
  DiscoveryOptions options;
  options.profile_distributions = true;
  options.distribution_buckets = 16;
  Result<DiscoveryReport> report = ProfileRelation(real, options);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Two adversaries: uniform (paper's model, distributions stripped) and
  // distribution-aware (extension level).
  MetadataPackage uniform_pkg =
      report->metadata.Restrict(DisclosureLevel::kWithRfds);
  const MetadataPackage& aware_pkg = report->metadata;

  ExperimentConfig config;
  config.rounds = 500;
  config.seed = 606;
  Result<MethodResult> uniform =
      RunMethod(real, uniform_pkg, GenerationMethod::kRandom, config);
  Result<MethodResult> aware =
      RunMethod(real, aware_pkg, GenerationMethod::kRandom, config);
  if (!uniform.ok() || !aware.ok()) {
    std::fprintf(stderr, "experiment failed\n");
    return 1;
  }

  TablePrinter table(
      "A6: UNIFORM-DOMAIN VS DISTRIBUTION-AWARE ADVERSARY "
      "(echocardiogram, 500 rounds)");
  table.SetHeader({"Attribute", "Semantic", "Uniform matches",
                   "Distribution-aware matches", "Amplification"});
  for (size_t c = 0; c < real.num_columns(); ++c) {
    Result<MethodAttributeResult> u = uniform->ForAttribute(c);
    Result<MethodAttributeResult> a = aware->ForAttribute(c);
    if (!u.ok() || !a.ok()) continue;
    double amp = u->mean_matches > 1e-9
                     ? a->mean_matches / u->mean_matches
                     : 0.0;
    table.AddRow({u->name, SemanticTypeToString(u->semantic),
                  FormatDouble(u->mean_matches, 3),
                  FormatDouble(a->mean_matches, 3),
                  FormatDouble(amp, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nReading: disclosing distributions amplifies leakage wherever the\n"
      "marginal is skewed (sum p_i^2 > 1/|D|); the paper's assumption that\n"
      "distributions stay private is load-bearing.\n");
  return 0;
}
