// Encoding-layer microbenchmarks: legacy Value-path vs dictionary-coded
// PLI construction and G3 computation (google-benchmark). The code path
// is the one every pipeline entry point now uses; the Value path is kept
// for agreement testing, and this bench quantifies the gap (the target
// regime is the 50k-row synthetic dataset, where code-path PLI
// construction should be at least 2x faster).
#include <benchmark/benchmark.h>

#include "data/datasets/synthetic.h"
#include "data/encoded_relation.h"
#include "partition/position_list_index.h"

namespace metaleak {
namespace {

Relation UniformRelation(size_t rows, size_t cats, size_t conts,
                         size_t domain) {
  return std::move(
             datasets::SyntheticUniform(rows, cats, conts, domain, 1234))
      .ValueOrDie();
}

// --- One-time encoding cost ---------------------------------------------------

void BM_EncodeRelation(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 3, 2,
                                 64);
  for (auto _ : state) {
    EncodedRelation encoded = EncodedRelation::Encode(rel);
    benchmark::DoNotOptimize(encoded.Fingerprint());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeRelation)->Arg(1000)->Arg(10000)->Arg(50000);

// --- Single-column PLI: Value hashing vs counting over codes ------------------

void BM_PliFromColumnValuePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 1, 0,
                                 64);
  for (auto _ : state) {
    PositionListIndex pli = PositionListIndex::FromColumn(rel.column(0));
    benchmark::DoNotOptimize(pli.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliFromColumnValuePath)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PliFromColumnCodePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 1, 0,
                                 64);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (auto _ : state) {
    PositionListIndex pli = PositionListIndex::FromCodes(
        encoded.codes(0), encoded.dictionary(0).num_codes());
    benchmark::DoNotOptimize(pli.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliFromColumnCodePath)->Arg(1000)->Arg(10000)->Arg(50000);

// --- Multi-column PLI: tuple hashing vs code folding --------------------------

void BM_PliFromColumnsValuePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 3, 0,
                                 16);
  for (auto _ : state) {
    PositionListIndex pli =
        PositionListIndex::FromColumns(rel, {0, 1, 2});
    benchmark::DoNotOptimize(pli.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliFromColumnsValuePath)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PliFromColumnsCodePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 3, 0,
                                 16);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (auto _ : state) {
    PositionListIndex pli =
        PositionListIndex::FromEncoded(encoded, {0, 1, 2});
    benchmark::DoNotOptimize(pli.num_clusters());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PliFromColumnsCodePath)->Arg(1000)->Arg(10000)->Arg(50000);

// --- G3 error on partitions built from each representation --------------------

void BM_G3ValuePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 2, 0,
                                 16);
  for (auto _ : state) {
    PositionListIndex x = PositionListIndex::FromColumn(rel.column(0));
    PositionListIndex a = PositionListIndex::FromColumn(rel.column(1));
    benchmark::DoNotOptimize(x.G3Error(a));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_G3ValuePath)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_G3CodePath(benchmark::State& state) {
  Relation rel = UniformRelation(static_cast<size_t>(state.range(0)), 2, 0,
                                 16);
  EncodedRelation encoded = EncodedRelation::Encode(rel);
  for (auto _ : state) {
    PositionListIndex x = PositionListIndex::FromCodes(
        encoded.codes(0), encoded.dictionary(0).num_codes());
    PositionListIndex a = PositionListIndex::FromCodes(
        encoded.codes(1), encoded.dictionary(1).num_codes());
    benchmark::DoNotOptimize(x.G3Error(a));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_G3CodePath)->Arg(1000)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace metaleak

BENCHMARK_MAIN();
