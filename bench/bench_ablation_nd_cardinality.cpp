// A2 — Ablation: numerical-dependency leakage vs. fan-out K.
//
// Section IV-B: expected correct (X, Y) pairs are N*K/(|D_X|*|D_Y|), and
// once K grows past |D_Y|/2 the sampled pool is guaranteed to overlap the
// real pool (pigeonhole), sharply raising the at-least-one-mapping
// probability. The marginal per-attribute hit rate stays 1/|D_Y|.
#include <cstdio>

#include "common/math_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/synthetic.h"
#include "discovery/discovery_engine.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"

using namespace metaleak;

int main() {
  const size_t kRows = 1000;
  const size_t kDx = 10;
  const size_t kDy = 16;
  TablePrinter table("A2: ND LEAKAGE VS FAN-OUT K (N=" +
                     std::to_string(kRows) + ", |Dx|=" +
                     std::to_string(kDx) + ", |Dy|=" + std::to_string(kDy) +
                     ", 400 rounds)");
  table.SetHeader({"K", "E[pair matches] = NK/(|Dx||Dy|)",
                   "P[pool overlap] (hypergeom)", "Measured Y matches",
                   "Random baseline E"});

  for (size_t k : {1u, 2u, 4u, 6u, 8u, 10u, 12u, 14u}) {
    datasets::SyntheticConfig config;
    config.num_rows = kRows;
    config.seed = 1000 + k;
    datasets::SyntheticAttribute x;
    x.name = "x";
    x.kind = datasets::SyntheticAttribute::Kind::kCategoricalBase;
    x.domain_size = kDx;
    datasets::SyntheticAttribute y;
    y.name = "y";
    y.kind = datasets::SyntheticAttribute::Kind::kDerivedBoundedFanout;
    y.source = 0;
    y.domain_size = kDy;
    y.fanout = k;
    config.attributes = {x, y};
    Result<Relation> rel = datasets::Synthetic(config);
    if (!rel.ok()) return 1;

    DiscoveryOptions discovery;
    discovery.nd.max_fanout_fraction = 1.0;
    discovery.nd.min_slack = 0;
    Result<DiscoveryReport> report = ProfileRelation(*rel, discovery);
    if (!report.ok()) return 1;

    ExperimentConfig econfig;
    econfig.rounds = 400;
    econfig.seed = k;
    Result<MethodResult> result =
        RunMethod(*rel, report->metadata, GenerationMethod::kNd, econfig);
    if (!result.ok()) return 1;

    Result<std::vector<Domain>> domains = report->metadata.RequireDomains();
    const Domain& dx = (*domains)[0];
    const Domain& dy = (*domains)[1];
    Result<MethodAttributeResult> target = result->ForAttribute(1);
    std::string measured =
        target.ok() && target->covered
            ? FormatDouble(target->mean_matches, 3)
            : "NA";
    table.AddRow(
        {std::to_string(k),
         FormatDouble(ExpectedNdPairMatches(kRows, dx, dy, k), 2),
         FormatDouble(NdAtLeastOneCorrectMapping(dy, k), 4), measured,
         FormatDouble(ExpectedRandomCategoricalMatches(kRows, dy), 2)});
  }
  table.Print();
  std::printf(
      "\nReading: pool-overlap probability hits 1 once K > |Dy|/2 (the\n"
      "paper's pigeonhole regime), while the per-attribute hit rate stays\n"
      "at the 1/|Dy| random baseline.\n");
  return 0;
}
