// Million-row scale bench: bandwidth proportional to real cardinality.
//
// Runs the full encode -> PLI build -> width-2 identifiability sweep ->
// fused leakage scan -> attack round pipeline over the Zipf-skewed wide
// schema (datasets::SyntheticZipfScale) at 200k / 500k / 1M rows, twice
// per scale: once with the adaptive u8/u16/u32 code widths the
// dictionaries naturally select, and once with the storage floor forced
// to u32 (the pre-adaptive layout). Before reporting any speedup the two
// runs are checked byte-identical — encoding fingerprints, sweep
// verdicts, and the bitwise accumulated leakage stats — and a thread
// axis re-runs the parallel stages at 1 and 8 threads expecting the same
// digests. Any mismatch exits non-zero.
//
// Results go to BENCH_scale.json: per-op rows/sec at each scale on both
// width axes, the narrow-over-u32 leakage-scan speedups, and the
// "width_parity" / "thread_parity" gates CI greps for. Setting
// METALEAK_SCALE_SMOKE=1 cuts the round counts for CI smoke runs without
// changing the row counts or the gates.
//
// A second artifact, BENCH_leakage.json, covers the risk-estimator
// layer over the same fixtures: per-estimator Evaluate() throughput at
// every scale, the "estimator_parity" gate (MatchRateEstimator cells
// bitwise equal to the direct fused scan; engine measure columns
// bitwise identical at 1 vs 8 threads), the "analytical_bands" gate
// (uniform-generation entropy, independence MI bias, Def 2.2/2.3
// expected matches, and NN-linkage rates against their closed-form
// predictions), and a rows/sec floor for the histogram-based estimator
// at 500k rows.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "partition/position_list_index.h"
#include "privacy/analytical.h"
#include "privacy/experiment.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"
#include "privacy/risk_estimator.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string op;
  std::string width;  // "narrow" or "u32"
  size_t rows = 0;
  double ms = 0.0;
  double rows_per_sec = 0.0;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Everything one width axis needs, built under the active width floor.
struct Pipeline {
  EncodedRelation encoded;
  GenerationContext gen;
  EncodedLeakageContext leakage;
  std::vector<EncodedBatch> pool;
  double encode_ms = 0.0;
};

Pipeline BuildPipeline(const Relation& real, const MetadataPackage& metadata,
                       size_t pool_size) {
  auto start = std::chrono::steady_clock::now();
  EncodedRelation encoded = EncodedRelation::Encode(real);
  const double encode_ms = MsSince(start);

  GenerationContext gen =
      std::move(GenerationContext::Build(metadata)).ValueOrDie();
  if (!gen.encodable()) {
    std::fprintf(stderr, "scale fixture is not encodable\n");
    std::exit(1);
  }
  EncodedLeakageContext leakage =
      std::move(EncodedLeakageContext::Build(encoded, gen.schema(),
                                             gen.domains(), {}))
          .ValueOrDie();
  if (!leakage.supported()) {
    std::fprintf(stderr, "leakage code path not live: %s\n",
                 leakage.fallback_reason().c_str());
    std::exit(1);
  }
  // Deterministic batch pool: both width axes fork the same seeds, so
  // the generated codes are value-identical and only the storage width
  // differs — exactly the comparison the parity gate needs.
  std::vector<EncodedBatch> pool(pool_size);
  Rng rng(11);
  for (EncodedBatch& batch : pool) {
    Rng round_rng = rng.Fork();
    if (!GenerateEncoded(gen, real.num_rows(), &round_rng, &batch).ok()) {
      std::abort();
    }
  }
  Pipeline p{std::move(encoded), std::move(gen), std::move(leakage),
             std::move(pool), encode_ms};
  return p;
}

// Accumulated leakage stats over `rounds` scans cycling the pool.
// Returns the total; *ms gets the wall time of the scan loop.
std::vector<AttributeRoundStats> RunScan(const Pipeline& p, size_t rounds,
                                         double* ms) {
  const size_t m = p.leakage.num_attributes();
  std::vector<AttributeRoundStats> stats(m);
  std::vector<AttributeRoundStats> total(m);
  auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    if (!p.leakage.Evaluate(p.pool[round % p.pool.size()], stats.data())
             .ok()) {
      std::abort();
    }
    for (size_t c = 0; c < m; ++c) {
      total[c].matches += stats[c].matches;
      total[c].mse += stats[c].mse;
      total[c].has_mse = stats[c].has_mse;
    }
  }
  *ms = MsSince(start);
  return total;
}

bool BitEqual(double a, double b) {
  uint64_t x, y;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

bool MeasuresBitIdentical(const std::vector<RiskMeasureStats>& a,
                          const std::vector<RiskMeasureStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].estimator != b[i].estimator || a[i].measure != b[i].measure ||
        a[i].active != b[i].active || a[i].rounds != b[i].rounds ||
        a[i].mean.size() != b[i].mean.size() ||
        a[i].stddev.size() != b[i].stddev.size()) {
      return false;
    }
    for (size_t c = 0; c < a[i].mean.size(); ++c) {
      if (!BitEqual(a[i].mean[c], b[i].mean[c]) ||
          !BitEqual(a[i].stddev[c], b[i].stddev[c])) {
        return false;
      }
    }
  }
  return true;
}

bool StatsBitIdentical(const std::vector<AttributeRoundStats>& a,
                       const std::vector<AttributeRoundStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    uint64_t x, y;
    std::memcpy(&x, &a[c].mse, sizeof(x));
    std::memcpy(&y, &b[c].mse, sizeof(y));
    if (a[c].matches != b[c].matches || x != y ||
        a[c].has_mse != b[c].has_mse) {
      return false;
    }
  }
  return true;
}

// Column-width census of an encoding, e.g. "u8:4 u16:5 u32:5".
std::string WidthCensus(const EncodedRelation& enc) {
  size_t by_width[3] = {0, 0, 0};
  for (size_t c = 0; c < enc.num_columns(); ++c) {
    switch (enc.column_width(c)) {
      case CodeWidth::kU8: ++by_width[0]; break;
      case CodeWidth::kU16: ++by_width[1]; break;
      case CodeWidth::kU32: ++by_width[2]; break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "u8:%zu u16:%zu u32:%zu", by_width[0],
                by_width[1], by_width[2]);
  return buf;
}

int Main() {
  const bool smoke = std::getenv("METALEAK_SCALE_SMOKE") != nullptr;
  struct Scale {
    size_t rows;
    size_t scan_rounds;
    size_t attack_rounds;
  };
  const std::vector<Scale> kScales = {
      {200000, smoke ? 4u : 20u, smoke ? 1u : 4u},
      {500000, smoke ? 3u : 12u, smoke ? 1u : 3u},
      {1000000, smoke ? 2u : 8u, smoke ? 1u : 2u},
  };
  const size_t pool_size = smoke ? 1 : 2;

  std::vector<BenchRecord> records;
  bool width_parity_ok = true;
  bool thread_parity_ok = true;
  double scan_speedup_200k = 0.0;
  double scan_speedup_500k = 0.0;
  double scan_speedup_1m = 0.0;

  std::vector<BenchRecord> est_records;
  bool estimator_parity_ok = true;
  bool bands_ok = true;
  double info_rows_per_sec_500k = 0.0;
  double info_rows_per_sec_1m = 0.0;

  for (const Scale& scale : kScales) {
    const size_t rows = scale.rows;
    Relation real =
        std::move(datasets::SyntheticZipfScale(rows, /*seed=*/21))
            .ValueOrDie();
    const size_t m = real.num_columns();

    // Metadata: schema + per-attribute domains, no dependency classes —
    // the attack round measured here is the Def 2.2/2.3 baseline
    // (generate from domains, score the fused leakage scan).
    EncodedRelation for_domains = EncodedRelation::Encode(real);
    MetadataPackage metadata;
    metadata.schema = real.schema();
    metadata.num_rows = rows;
    for (size_t c = 0; c < m; ++c) {
      metadata.domains.push_back(
          std::move(for_domains.DomainOf(c)).ValueOrDie());
    }

    auto run_axis = [&](const char* width_name) {
      Pipeline p = BuildPipeline(real, metadata, pool_size);
      auto record = [&](const char* op, double ms) {
        records.push_back({op, width_name, rows,  ms,
                           static_cast<double>(rows) / (ms / 1000.0)});
      };
      record("encode", p.encode_ms);

      auto start = std::chrono::steady_clock::now();
      size_t clusters = 0;
      for (size_t c = 0; c < m; ++c) {
        clusters +=
            PositionListIndex::FromEncoded(p.encoded, {c}).num_clusters();
      }
      if (clusters == SIZE_MAX) std::abort();
      record("pli_build", MsSince(start));

      start = std::chrono::steady_clock::now();
      std::vector<bool> verdicts =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      record("sweep_width2", MsSince(start));

      double scan_ms = 0.0;
      std::vector<AttributeRoundStats> totals =
          RunScan(p, scale.scan_rounds, &scan_ms);
      records.push_back(
          {"leakage_scan", width_name, rows, scan_ms,
           static_cast<double>(rows * scale.scan_rounds) /
               (scan_ms / 1000.0)});

      start = std::chrono::steady_clock::now();
      {
        EncodedBatch batch;
        std::vector<AttributeRoundStats> stats(p.leakage.num_attributes());
        Rng rng(23);
        for (size_t round = 0; round < scale.attack_rounds; ++round) {
          Rng round_rng = rng.Fork();
          if (!GenerateEncoded(p.gen, rows, &round_rng, &batch).ok()) {
            std::abort();
          }
          if (!p.leakage.Evaluate(batch, stats.data()).ok()) std::abort();
        }
      }
      const double attack_ms = MsSince(start);
      records.push_back(
          {"attack_round", width_name, rows, attack_ms,
           static_cast<double>(rows * scale.attack_rounds) /
               (attack_ms / 1000.0)});

      struct AxisOut {
        uint64_t fingerprint;
        std::string census;
        std::vector<bool> verdicts;
        std::vector<AttributeRoundStats> totals;
        double scan_ms;
        Pipeline pipeline;
      };
      return AxisOut{p.encoded.Fingerprint(), WidthCensus(p.encoded),
                     std::move(verdicts),     std::move(totals),
                     scan_ms,                 std::move(p)};
    };

    std::printf("scale: %zu rows x %zu attrs\n", rows, m);
    auto narrow = run_axis("narrow");
    SetCodeWidthFloorOverride(CodeWidth::kU32);
    auto wide = run_axis("u32");
    ClearCodeWidthFloorOverride();
    std::printf("  widths narrow [%s] | forced [%s]\n",
                narrow.census.c_str(), wide.census.c_str());

    // --- Width parity: byte-identical results on both axes ------------
    if (narrow.fingerprint != wide.fingerprint) {
      std::fprintf(stderr, "width parity FAILED: fingerprints\n");
      width_parity_ok = false;
    }
    if (narrow.verdicts != wide.verdicts) {
      std::fprintf(stderr, "width parity FAILED: sweep verdicts\n");
      width_parity_ok = false;
    }
    if (!StatsBitIdentical(narrow.totals, wide.totals)) {
      std::fprintf(stderr, "width parity FAILED: leakage stats\n");
      width_parity_ok = false;
    }

    const double scan_speedup = wide.scan_ms / narrow.scan_ms;
    if (rows == 200000) scan_speedup_200k = scan_speedup;
    if (rows == 500000) scan_speedup_500k = scan_speedup;
    if (rows == 1000000) scan_speedup_1m = scan_speedup;
    std::printf(
        "  leakage scan x%zu  u32 %8.1f ms | narrow %8.1f ms  (%.2fx)\n",
        scale.scan_rounds, wide.scan_ms, narrow.scan_ms, scan_speedup);

    // --- Thread axis: 1 vs 8 threads, identical digests ---------------
    {
      const Pipeline& p = narrow.pipeline;
      std::vector<AttributeRoundStats> stats1(p.leakage.num_attributes());
      std::vector<AttributeRoundStats> stats8(p.leakage.num_attributes());
      SetGlobalThreadCount(1);
      std::vector<bool> verdicts1 =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      if (!p.leakage.Evaluate(p.pool[0], stats1.data()).ok()) std::abort();
      SetGlobalThreadCount(8);
      std::vector<bool> verdicts8 =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      if (!p.leakage.Evaluate(p.pool[0], stats8.data()).ok()) std::abort();
      SetGlobalThreadCount(0);
      if (verdicts1 != verdicts8 || !StatsBitIdentical(stats1, stats8)) {
        std::fprintf(stderr,
                     "thread parity FAILED at %zu rows: 1 vs 8 threads\n",
                     rows);
        thread_parity_ok = false;
      }
    }

    // --- Risk estimator layer: throughput, parity, analytical bands ---
    {
      const Pipeline& p = narrow.pipeline;
      RiskContext rctx;
      rctx.real = &p.encoded;
      rctx.syn_schema = &p.gen.schema();
      rctx.domains = &p.gen.domains();
      rctx.metadata = &metadata;
      const RiskEstimatorRegistry& registry = RiskEstimatorRegistry::All();
      std::vector<std::unique_ptr<BoundRiskEstimator>> bound;
      size_t info_idx = 0, nn_idx = 0;
      for (size_t e = 0; e < registry.estimators().size(); ++e) {
        const RiskEstimator* est = registry.estimators()[e];
        if (est->name() == InfoTheoreticEstimator::Instance().name()) {
          info_idx = e;
        }
        if (est->name() == NnLinkageEstimator::Instance().name()) {
          nn_idx = e;
        }
        bound.push_back(std::move(est->Bind(rctx)).ValueOrDie());
      }

      // Per-estimator Evaluate() throughput cycling the batch pool.
      for (size_t e = 0; e < bound.size(); ++e) {
        const RiskEstimator* est = registry.estimators()[e];
        std::vector<RiskMeasureCell> cells(est->measures().size() * m);
        auto start = std::chrono::steady_clock::now();
        for (size_t round = 0; round < scale.scan_rounds; ++round) {
          if (!bound[e]
                   ->Evaluate(p.pool[round % p.pool.size()], cells.data())
                   .ok()) {
            std::abort();
          }
        }
        const double ms = MsSince(start);
        const double rps =
            static_cast<double>(rows * scale.scan_rounds) / (ms / 1000.0);
        est_records.push_back(
            {"estimator_" + est->name(), "narrow", rows, ms, rps});
        if (est->name() == InfoTheoreticEstimator::Instance().name()) {
          if (rows == 500000) info_rows_per_sec_500k = rps;
          if (rows == 1000000) info_rows_per_sec_1m = rps;
        }
      }

      // Parity: MatchRateEstimator cells reproduce the direct fused scan
      // bitwise, and the entropy column equals a straight dictionary
      // recomputation through the shared ShannonEntropyBits definition.
      std::vector<AttributeRoundStats> direct(m);
      if (!p.leakage.Evaluate(p.pool[0], direct.data()).ok()) std::abort();
      std::vector<RiskMeasureCell> mr(2 * m);
      if (!bound[0]->Evaluate(p.pool[0], mr.data()).ok()) std::abort();
      for (size_t c = 0; c < m; ++c) {
        const RiskMeasureCell& matches =
            mr[MatchRateEstimator::kMatchesIndex * m + c];
        const RiskMeasureCell& mse =
            mr[MatchRateEstimator::kMseIndex * m + c];
        if (!matches.present ||
            !BitEqual(matches.value,
                      static_cast<double>(direct[c].matches)) ||
            mse.present != direct[c].has_mse ||
            (mse.present && !BitEqual(mse.value, direct[c].mse))) {
          std::fprintf(stderr,
                       "estimator parity FAILED at %zu rows: match-rate "
                       "cells vs fused scan (attr %zu)\n",
                       rows, c);
          estimator_parity_ok = false;
        }
      }
      std::vector<RiskMeasureCell> info(3 * m);
      std::vector<RiskMeasureCell> nn(2 * m);
      if (!bound[info_idx]->Evaluate(p.pool[0], info.data()).ok()) {
        std::abort();
      }
      if (!bound[nn_idx]->Evaluate(p.pool[0], nn.data()).ok()) std::abort();
      for (size_t c = 0; c < m; ++c) {
        const ColumnDictionary& dict = p.encoded.dictionary(c);
        std::vector<size_t> counts;
        for (uint32_t code = 1; code < dict.num_codes(); ++code) {
          counts.push_back(dict.count(code));
        }
        const RiskMeasureCell& h_cell =
            info[InfoTheoreticEstimator::kEntropyIndex * m + c];
        if (!h_cell.present ||
            !BitEqual(h_cell.value, ShannonEntropyBits(counts))) {
          std::fprintf(stderr,
                       "estimator parity FAILED at %zu rows: entropy cell "
                       "vs dictionary recomputation (attr %zu)\n",
                       rows, c);
          estimator_parity_ok = false;
        }
      }

      // Parity: engine-streamed measure columns are bit-identical at 1
      // and 8 threads with the full registry (checked once, at 200k).
      if (rows == 200000) {
        ExperimentConfig cfg;
        cfg.rounds = smoke ? 2 : 4;
        cfg.seed = 20260809;
        cfg.estimators = &registry;
        ExperimentEngine eng(p.encoded, metadata);
        cfg.threads = 1;
        MethodResult r1 =
            std::move(eng.Run(GenerationMethod::kRandom, cfg)).ValueOrDie();
        cfg.threads = 8;
        MethodResult r8 =
            std::move(eng.Run(GenerationMethod::kRandom, cfg)).ValueOrDie();
        if (!MeasuresBitIdentical(r1.measures, r8.measures)) {
          std::fprintf(stderr,
                       "estimator parity FAILED at %zu rows: engine "
                       "measures 1 vs 8 threads\n",
                       rows);
          estimator_parity_ok = false;
        }
      }

      // Analytical tolerance bands: the closed-form models the paper's
      // Section III builds on, checked against the empirical estimator
      // output on the Zipf fixture.
      constexpr double kLn2 = 0.6931471805599453;
      const double n = static_cast<double>(rows);
      auto band_fail = [&](size_t c, const char* what, double got,
                           double want, double tol) {
        std::fprintf(stderr,
                     "analytical band FAILED at %zu rows, attr %zu: %s = "
                     "%g vs %g (tol %g)\n",
                     rows, c, what, got, want, tol);
        bands_ok = false;
      };
      for (size_t c = 0; c < m; ++c) {
        const Domain& dom = *metadata.domains[c];
        const size_t compared =
            rows - p.encoded.dictionary(c).null_count();
        double bias_mi, h_syn_cap;
        if (dom.is_categorical()) {
          // Generated marginal is uniform over |D| values: its empirical
          // entropy sits below log2|D| by the plug-in (Miller-Madow)
          // bias, (|D|-1)/(2N ln 2) bits to first order.
          const double K = static_cast<double>(dom.values().size());
          std::vector<uint32_t> counts(dom.values().size() + 1, 0);
          HistogramCodes(ActiveSimdLevel(), p.pool[0].code_view(c),
                         counts.size(), counts.data());
          const double h_syn =
              ShannonEntropyBits(counts.data(), counts.size());
          const double bias_h = (K - 1.0) / (2.0 * n * kLn2);
          const double gap = std::log2(K) - h_syn;
          if (gap < -1e-9 || gap > 3.0 * bias_h + 0.1) {
            band_fail(c, "uniform-generation entropy gap", gap, 0.0,
                      3.0 * bias_h + 0.1);
          }
          const double k_real =
              static_cast<double>(p.encoded.dictionary(c).num_codes() - 1);
          bias_mi = (k_real - 1.0) * (K - 1.0) / (2.0 * n * kLn2);
          h_syn_cap = h_syn;
        } else {
          // Real-stored columns bin both sides into kMiBins cells.
          const double bins =
              static_cast<double>(InfoTheoreticEstimator::kMiBins);
          bias_mi = (bins - 1.0) * (bins - 1.0) / (2.0 * n * kLn2);
          h_syn_cap = std::log2(bins);
        }
        // Real and generated columns are independent, so the true MI is
        // 0 and the plug-in estimate concentrates at its bias. When the
        // joint table outgrows the sample the bias bound is vacuous and
        // the information inequality MI <= min(H) takes over.
        const double h_real =
            info[InfoTheoreticEstimator::kEntropyIndex * m + c].value;
        const double mi =
            info[InfoTheoreticEstimator::kMiIndex * m + c].value;
        const double mi_band = std::min(3.0 * bias_mi + 0.01,
                                        std::min(h_real, h_syn_cap) + 1e-6);
        if (mi < -1e-9 || mi > mi_band) {
          band_fail(c, "independence MI", mi, 0.0, mi_band);
        }
        // Def 2.2/2.3 expected matches vs the streamed scan mean.
        const double expected =
            dom.is_categorical()
                ? ExpectedRandomCategoricalMatches(compared, dom)
                : ExpectedRandomContinuousMatches(
                      compared, dom, LeakageOptions().epsilon_fraction *
                                         dom.range());
        const double measured =
            static_cast<double>(narrow.totals[c].matches) /
            static_cast<double>(scale.scan_rounds);
        const double tol = std::max(5.0 * std::sqrt(expected + 1.0),
                                    0.35 * expected + 3.0);
        if (std::abs(measured - expected) > tol) {
          band_fail(c, "Def 2.2/2.3 matches", measured, expected, tol);
        }
        // NN linkage: a uniform batch of N values over the domain leaves
        // almost no real value outside every epsilon ball, and the
        // aligned draw is the true nearest neighbor only ~once.
        if (dom.is_continuous()) {
          const RiskMeasureCell& eps_cell =
              nn[NnLinkageEstimator::kEpsMatchesIndex * m + c];
          const RiskMeasureCell& top1_cell =
              nn[NnLinkageEstimator::kTop1HitsIndex * m + c];
          if (!eps_cell.present ||
              eps_cell.value < 0.99 * static_cast<double>(compared)) {
            band_fail(c, "NN epsilon-ball rate",
                      eps_cell.value / static_cast<double>(compared), 1.0,
                      0.01);
          }
          if (!top1_cell.present || top1_cell.value > 64.0) {
            band_fail(c, "NN top-1 hits", top1_cell.value, 1.0, 64.0);
          }
        }
      }
    }
  }

  std::ofstream json("BENCH_scale.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"width_parity\": \""
       << (width_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"thread_parity\": \""
       << (thread_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"narrow_leakage_scan_speedup_200k\": " << scan_speedup_200k
       << ",\n  \"narrow_leakage_scan_speedup_500k\": " << scan_speedup_500k
       << ",\n  \"narrow_leakage_scan_speedup_1m\": " << scan_speedup_1m
       << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"width\": \"" << r.width
         << "\", \"rows\": " << r.rows << ", \"ms\": " << r.ms
         << ", \"rows_per_sec\": " << r.rows_per_sec << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf(
      "wrote BENCH_scale.json (%zu records, narrow scan speedup 500k "
      "%.2fx, 1M %.2fx)\n",
      records.size(), scan_speedup_500k, scan_speedup_1m);

  // Histogram-estimator floor: the info-theoretic pass must stay within
  // an order of magnitude of the fused scan — a hash-map fallback on the
  // dense joints would show up here long before it hurts users. The
  // fixture's two >= 200k-cardinality columns already pay the sparse
  // joint path, so the floor sits well below the dense-joint rate.
  const double kInfoFloor500k = 3.0e5;
  const bool floor_ok = info_rows_per_sec_500k >= kInfoFloor500k;
  if (!floor_ok) {
    std::fprintf(stderr,
                 "info-theoretic estimator FLOOR failed at 500k rows: "
                 "%.0f rows/sec < %.0f\n",
                 info_rows_per_sec_500k, kInfoFloor500k);
  }
  std::ofstream leak_json("BENCH_leakage.json");
  leak_json << "{\n  " << BenchMetadataJson()
            << ",\n  \"estimator_parity\": \""
            << (estimator_parity_ok ? "ok" : "MISMATCH")
            << "\",\n  \"analytical_bands\": \""
            << (bands_ok ? "ok" : "OUT_OF_BAND")
            << "\",\n  \"hist_estimator_floor_500k\": \""
            << (floor_ok ? "ok" : "LOW")
            << "\",\n  \"info_theoretic_rows_per_sec_500k\": "
            << info_rows_per_sec_500k
            << ",\n  \"info_theoretic_rows_per_sec_1m\": "
            << info_rows_per_sec_1m << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < est_records.size(); ++i) {
    const BenchRecord& r = est_records[i];
    leak_json << "    {\"op\": \"" << r.op << "\", \"width\": \"" << r.width
              << "\", \"rows\": " << r.rows << ", \"ms\": " << r.ms
              << ", \"rows_per_sec\": " << r.rows_per_sec << "}"
              << (i + 1 < est_records.size() ? "," : "") << "\n";
  }
  leak_json << "  ]\n}\n";
  std::printf(
      "wrote BENCH_leakage.json (%zu records, parity %s, bands %s, "
      "info-theoretic 500k %.2fM rows/sec)\n",
      est_records.size(), estimator_parity_ok ? "ok" : "MISMATCH",
      bands_ok ? "ok" : "OUT_OF_BAND", info_rows_per_sec_500k / 1e6);
  return (width_parity_ok && thread_parity_ok && estimator_parity_ok &&
          bands_ok && floor_ok)
             ? 0
             : 1;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
