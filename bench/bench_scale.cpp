// Million-row scale bench: bandwidth proportional to real cardinality.
//
// Runs the full encode -> PLI build -> width-2 identifiability sweep ->
// fused leakage scan -> attack round pipeline over the Zipf-skewed wide
// schema (datasets::SyntheticZipfScale) at 200k / 500k / 1M rows, twice
// per scale: once with the adaptive u8/u16/u32 code widths the
// dictionaries naturally select, and once with the storage floor forced
// to u32 (the pre-adaptive layout). Before reporting any speedup the two
// runs are checked byte-identical — encoding fingerprints, sweep
// verdicts, and the bitwise accumulated leakage stats — and a thread
// axis re-runs the parallel stages at 1 and 8 threads expecting the same
// digests. Any mismatch exits non-zero.
//
// Results go to BENCH_scale.json: per-op rows/sec at each scale on both
// width axes, the narrow-over-u32 leakage-scan speedups, and the
// "width_parity" / "thread_parity" gates CI greps for. Setting
// METALEAK_SCALE_SMOKE=1 cuts the round counts for CI smoke runs without
// changing the row counts or the gates.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "data/code_column.h"
#include "data/datasets/synthetic.h"
#include "data/encoded_batch.h"
#include "data/encoded_relation.h"
#include "data/relation.h"
#include "generation/generation_engine.h"
#include "metadata/metadata_package.h"
#include "partition/position_list_index.h"
#include "privacy/identifiability.h"
#include "privacy/leakage.h"

namespace metaleak {
namespace {

struct BenchRecord {
  std::string op;
  std::string width;  // "narrow" or "u32"
  size_t rows = 0;
  double ms = 0.0;
  double rows_per_sec = 0.0;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Everything one width axis needs, built under the active width floor.
struct Pipeline {
  EncodedRelation encoded;
  GenerationContext gen;
  EncodedLeakageContext leakage;
  std::vector<EncodedBatch> pool;
  double encode_ms = 0.0;
};

Pipeline BuildPipeline(const Relation& real, const MetadataPackage& metadata,
                       size_t pool_size) {
  auto start = std::chrono::steady_clock::now();
  EncodedRelation encoded = EncodedRelation::Encode(real);
  const double encode_ms = MsSince(start);

  GenerationContext gen =
      std::move(GenerationContext::Build(metadata)).ValueOrDie();
  if (!gen.encodable()) {
    std::fprintf(stderr, "scale fixture is not encodable\n");
    std::exit(1);
  }
  EncodedLeakageContext leakage =
      std::move(EncodedLeakageContext::Build(encoded, gen.schema(),
                                             gen.domains(), {}))
          .ValueOrDie();
  if (!leakage.supported()) {
    std::fprintf(stderr, "leakage code path not live: %s\n",
                 leakage.fallback_reason().c_str());
    std::exit(1);
  }
  // Deterministic batch pool: both width axes fork the same seeds, so
  // the generated codes are value-identical and only the storage width
  // differs — exactly the comparison the parity gate needs.
  std::vector<EncodedBatch> pool(pool_size);
  Rng rng(11);
  for (EncodedBatch& batch : pool) {
    Rng round_rng = rng.Fork();
    if (!GenerateEncoded(gen, real.num_rows(), &round_rng, &batch).ok()) {
      std::abort();
    }
  }
  Pipeline p{std::move(encoded), std::move(gen), std::move(leakage),
             std::move(pool), encode_ms};
  return p;
}

// Accumulated leakage stats over `rounds` scans cycling the pool.
// Returns the total; *ms gets the wall time of the scan loop.
std::vector<AttributeRoundStats> RunScan(const Pipeline& p, size_t rounds,
                                         double* ms) {
  const size_t m = p.leakage.num_attributes();
  std::vector<AttributeRoundStats> stats(m);
  std::vector<AttributeRoundStats> total(m);
  auto start = std::chrono::steady_clock::now();
  for (size_t round = 0; round < rounds; ++round) {
    if (!p.leakage.Evaluate(p.pool[round % p.pool.size()], stats.data())
             .ok()) {
      std::abort();
    }
    for (size_t c = 0; c < m; ++c) {
      total[c].matches += stats[c].matches;
      total[c].mse += stats[c].mse;
      total[c].has_mse = stats[c].has_mse;
    }
  }
  *ms = MsSince(start);
  return total;
}

bool StatsBitIdentical(const std::vector<AttributeRoundStats>& a,
                       const std::vector<AttributeRoundStats>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    uint64_t x, y;
    std::memcpy(&x, &a[c].mse, sizeof(x));
    std::memcpy(&y, &b[c].mse, sizeof(y));
    if (a[c].matches != b[c].matches || x != y ||
        a[c].has_mse != b[c].has_mse) {
      return false;
    }
  }
  return true;
}

// Column-width census of an encoding, e.g. "u8:4 u16:5 u32:5".
std::string WidthCensus(const EncodedRelation& enc) {
  size_t by_width[3] = {0, 0, 0};
  for (size_t c = 0; c < enc.num_columns(); ++c) {
    switch (enc.column_width(c)) {
      case CodeWidth::kU8: ++by_width[0]; break;
      case CodeWidth::kU16: ++by_width[1]; break;
      case CodeWidth::kU32: ++by_width[2]; break;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "u8:%zu u16:%zu u32:%zu", by_width[0],
                by_width[1], by_width[2]);
  return buf;
}

int Main() {
  const bool smoke = std::getenv("METALEAK_SCALE_SMOKE") != nullptr;
  struct Scale {
    size_t rows;
    size_t scan_rounds;
    size_t attack_rounds;
  };
  const std::vector<Scale> kScales = {
      {200000, smoke ? 4u : 20u, smoke ? 1u : 4u},
      {500000, smoke ? 3u : 12u, smoke ? 1u : 3u},
      {1000000, smoke ? 2u : 8u, smoke ? 1u : 2u},
  };
  const size_t pool_size = smoke ? 1 : 2;

  std::vector<BenchRecord> records;
  bool width_parity_ok = true;
  bool thread_parity_ok = true;
  double scan_speedup_200k = 0.0;
  double scan_speedup_500k = 0.0;
  double scan_speedup_1m = 0.0;

  for (const Scale& scale : kScales) {
    const size_t rows = scale.rows;
    Relation real =
        std::move(datasets::SyntheticZipfScale(rows, /*seed=*/21))
            .ValueOrDie();
    const size_t m = real.num_columns();

    // Metadata: schema + per-attribute domains, no dependency classes —
    // the attack round measured here is the Def 2.2/2.3 baseline
    // (generate from domains, score the fused leakage scan).
    EncodedRelation for_domains = EncodedRelation::Encode(real);
    MetadataPackage metadata;
    metadata.schema = real.schema();
    metadata.num_rows = rows;
    for (size_t c = 0; c < m; ++c) {
      metadata.domains.push_back(
          std::move(for_domains.DomainOf(c)).ValueOrDie());
    }

    auto run_axis = [&](const char* width_name) {
      Pipeline p = BuildPipeline(real, metadata, pool_size);
      auto record = [&](const char* op, double ms) {
        records.push_back({op, width_name, rows,  ms,
                           static_cast<double>(rows) / (ms / 1000.0)});
      };
      record("encode", p.encode_ms);

      auto start = std::chrono::steady_clock::now();
      size_t clusters = 0;
      for (size_t c = 0; c < m; ++c) {
        clusters +=
            PositionListIndex::FromEncoded(p.encoded, {c}).num_clusters();
      }
      if (clusters == SIZE_MAX) std::abort();
      record("pli_build", MsSince(start));

      start = std::chrono::steady_clock::now();
      std::vector<bool> verdicts =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      record("sweep_width2", MsSince(start));

      double scan_ms = 0.0;
      std::vector<AttributeRoundStats> totals =
          RunScan(p, scale.scan_rounds, &scan_ms);
      records.push_back(
          {"leakage_scan", width_name, rows, scan_ms,
           static_cast<double>(rows * scale.scan_rounds) /
               (scan_ms / 1000.0)});

      start = std::chrono::steady_clock::now();
      {
        EncodedBatch batch;
        std::vector<AttributeRoundStats> stats(p.leakage.num_attributes());
        Rng rng(23);
        for (size_t round = 0; round < scale.attack_rounds; ++round) {
          Rng round_rng = rng.Fork();
          if (!GenerateEncoded(p.gen, rows, &round_rng, &batch).ok()) {
            std::abort();
          }
          if (!p.leakage.Evaluate(batch, stats.data()).ok()) std::abort();
        }
      }
      const double attack_ms = MsSince(start);
      records.push_back(
          {"attack_round", width_name, rows, attack_ms,
           static_cast<double>(rows * scale.attack_rounds) /
               (attack_ms / 1000.0)});

      struct AxisOut {
        uint64_t fingerprint;
        std::string census;
        std::vector<bool> verdicts;
        std::vector<AttributeRoundStats> totals;
        double scan_ms;
        Pipeline pipeline;
      };
      return AxisOut{p.encoded.Fingerprint(), WidthCensus(p.encoded),
                     std::move(verdicts),     std::move(totals),
                     scan_ms,                 std::move(p)};
    };

    std::printf("scale: %zu rows x %zu attrs\n", rows, m);
    auto narrow = run_axis("narrow");
    SetCodeWidthFloorOverride(CodeWidth::kU32);
    auto wide = run_axis("u32");
    ClearCodeWidthFloorOverride();
    std::printf("  widths narrow [%s] | forced [%s]\n",
                narrow.census.c_str(), wide.census.c_str());

    // --- Width parity: byte-identical results on both axes ------------
    if (narrow.fingerprint != wide.fingerprint) {
      std::fprintf(stderr, "width parity FAILED: fingerprints\n");
      width_parity_ok = false;
    }
    if (narrow.verdicts != wide.verdicts) {
      std::fprintf(stderr, "width parity FAILED: sweep verdicts\n");
      width_parity_ok = false;
    }
    if (!StatsBitIdentical(narrow.totals, wide.totals)) {
      std::fprintf(stderr, "width parity FAILED: leakage stats\n");
      width_parity_ok = false;
    }

    const double scan_speedup = wide.scan_ms / narrow.scan_ms;
    if (rows == 200000) scan_speedup_200k = scan_speedup;
    if (rows == 500000) scan_speedup_500k = scan_speedup;
    if (rows == 1000000) scan_speedup_1m = scan_speedup;
    std::printf(
        "  leakage scan x%zu  u32 %8.1f ms | narrow %8.1f ms  (%.2fx)\n",
        scale.scan_rounds, wide.scan_ms, narrow.scan_ms, scan_speedup);

    // --- Thread axis: 1 vs 8 threads, identical digests ---------------
    {
      const Pipeline& p = narrow.pipeline;
      std::vector<AttributeRoundStats> stats1(p.leakage.num_attributes());
      std::vector<AttributeRoundStats> stats8(p.leakage.num_attributes());
      SetGlobalThreadCount(1);
      std::vector<bool> verdicts1 =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      if (!p.leakage.Evaluate(p.pool[0], stats1.data()).ok()) std::abort();
      SetGlobalThreadCount(8);
      std::vector<bool> verdicts8 =
          std::move(IdentifiableRows(p.encoded, 2)).ValueOrDie();
      if (!p.leakage.Evaluate(p.pool[0], stats8.data()).ok()) std::abort();
      SetGlobalThreadCount(0);
      if (verdicts1 != verdicts8 || !StatsBitIdentical(stats1, stats8)) {
        std::fprintf(stderr,
                     "thread parity FAILED at %zu rows: 1 vs 8 threads\n",
                     rows);
        thread_parity_ok = false;
      }
    }
  }

  std::ofstream json("BENCH_scale.json");
  json << "{\n  " << BenchMetadataJson()
       << ",\n  \"width_parity\": \""
       << (width_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"thread_parity\": \""
       << (thread_parity_ok ? "ok" : "MISMATCH")
       << "\",\n  \"narrow_leakage_scan_speedup_200k\": " << scan_speedup_200k
       << ",\n  \"narrow_leakage_scan_speedup_500k\": " << scan_speedup_500k
       << ",\n  \"narrow_leakage_scan_speedup_1m\": " << scan_speedup_1m
       << ",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    json << "    {\"op\": \"" << r.op << "\", \"width\": \"" << r.width
         << "\", \"rows\": " << r.rows << ", \"ms\": " << r.ms
         << ", \"rows_per_sec\": " << r.rows_per_sec << "}"
         << (i + 1 < records.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf(
      "wrote BENCH_scale.json (%zu records, narrow scan speedup 500k "
      "%.2fx, 1M %.2fx)\n",
      records.size(), scan_speedup_500k, scan_speedup_1m);
  return (width_parity_ok && thread_parity_ok) ? 0 : 1;
}

}  // namespace
}  // namespace metaleak

int main() { return metaleak::Main(); }
