// A8 — Ablation: conditional functional dependencies.
//
// CFDs are the data-cleaning FD extension the paper cites; this bench
// extends the Section III-B argument to them: a CFD is a scoped FD, so
// CFD-informed generation should match random generation on every
// covered attribute. Run on a synthetic fintech-style relation with
// planted conditional structure plus the echocardiogram replica.
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "data/datasets/echocardiogram.h"
#include "discovery/discovery_engine.h"
#include "privacy/experiment.h"

using namespace metaleak;

namespace {

// region scopes dept -> manager; us rows share one currency.
Relation PlantedCfdRelation() {
  Schema schema({
      {"region", DataType::kString, SemanticType::kCategorical},
      {"dept", DataType::kString, SemanticType::kCategorical},
      {"manager", DataType::kString, SemanticType::kCategorical},
      {"currency", DataType::kString, SemanticType::kCategorical},
  });
  RelationBuilder builder(schema);
  Rng rng(17);
  const char* depts[] = {"sales", "dev", "ops", "hr"};
  const char* eu_managers[] = {"anna", "bert", "cara", "dave"};
  for (int i = 0; i < 300; ++i) {
    bool eu = rng.Bernoulli(0.5);
    size_t d = rng.UniformIndex(4);
    if (eu) {
      // dept determines manager inside the EU scope.
      builder.AddRow({Value::Str("eu"), Value::Str(depts[d]),
                      Value::Str(eu_managers[d]),
                      Value::Str(rng.Bernoulli(0.7) ? "eur" : "sek")});
    } else {
      // Same dept maps to many managers in the US scope.
      builder.AddRow({Value::Str("us"), Value::Str(depts[d]),
                      Value::Str("m" + std::to_string(rng.UniformIndex(8))),
                      Value::Str("usd")});
    }
  }
  return std::move(builder.Finish()).ValueOrDie();
}

int RunCase(const char* title, const Relation& real) {
  DiscoveryOptions options;
  options.discover_cfds = true;
  options.cfd.min_support = 8;
  Result<DiscoveryReport> report = ProfileRelation(real, options);
  if (!report.ok()) {
    std::fprintf(stderr, "profiling failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu conditional FDs discovered\n", title,
              report->metadata.conditional_fds.size());
  size_t shown = 0;
  for (const ConditionalFd& cfd : report->metadata.conditional_fds) {
    if (shown++ >= 5) {
      std::printf("  ... (%zu more)\n",
                  report->metadata.conditional_fds.size() - 5);
      break;
    }
    std::printf("  %s\n", cfd.ToString(real.schema()).c_str());
  }

  ExperimentConfig config;
  config.rounds = 400;
  config.seed = 808;
  Result<std::vector<MethodResult>> results = RunExperiment(
      real, report->metadata,
      {GenerationMethod::kRandom, GenerationMethod::kCfd}, config);
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }

  TablePrinter table(std::string("A8: CFD vs random leakage — ") + title);
  table.SetHeader({"Attribute", "Random matches", "CFD matches",
                   "CFD covered?"});
  for (size_t c = 0; c < real.num_columns(); ++c) {
    Result<MethodAttributeResult> rnd = (*results)[0].ForAttribute(c);
    Result<MethodAttributeResult> cfd = (*results)[1].ForAttribute(c);
    if (!rnd.ok() || !cfd.ok()) continue;
    table.AddRow({rnd->name, FormatDouble(rnd->mean_matches, 3),
                  cfd->covered ? FormatDouble(cfd->mean_matches, 3) : "NA",
                  cfd->covered ? "yes" : "no"});
  }
  table.Print();
  std::printf("\n");
  return 0;
}

}  // namespace

int main() {
  if (int rc = RunCase("planted fintech-style relation",
                       PlantedCfdRelation())) {
    return rc;
  }
  if (int rc = RunCase("echocardiogram replica",
                       datasets::Echocardiogram())) {
    return rc;
  }
  std::printf(
      "Reading: *variable* CFDs behave like FDs — generation stays at the\n"
      "random baseline (Section III-B's one-shot-mapping argument extends\n"
      "to scoped FDs). *Constant* CFDs are different: their pattern\n"
      "constants embed actual data values in the metadata, and the covered\n"
      "attributes (currency, alive_at_1 above) leak measurably more than\n"
      "random. Constant patterns should be treated as data, not metadata.\n");
  return 0;
}
